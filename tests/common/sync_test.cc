// Tests for the annotated sync layer (DESIGN.md §12): the runtime
// lock-order checker's death diagnostics — a rank inversion must name BOTH
// acquisition sites — plus the positive paths (legal nesting, relockable
// MutexLock, reader/writer locks, CondVar waits) that must never trip it.
#include "joinopt/common/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "joinopt/common/lock_ranks.h"

namespace joinopt {
namespace {

#if JOINOPT_SYNC_CHECKS
int HeldCount() { return sync_internal::HeldLockCountForTest(); }
#else
int HeldCount() { return 0; }
#endif

TEST(SyncTest, ChecksAreCompiledIntoThisBuild) {
  // The tier-1 build defines JOINOPT_LOCK_ORDER_CHECK (CMake default ON);
  // if this fails the death tests below silently skip — surface that.
  EXPECT_TRUE(SyncChecksEnabled());
}

TEST(SyncTest, AscendingRankOrderIsLegal) {
  Mutex low(100, "low");
  Mutex high(200, "high");
  low.Lock();
  high.Lock();
  EXPECT_EQ(HeldCount(), 2);
  high.Unlock();
  low.Unlock();
  EXPECT_EQ(HeldCount(), 0);
}

TEST(SyncTest, UnrankedMutexesAreExemptFromOrdering) {
  // Default-constructed mutexes (kNoRank) are tracked for AssertHeld but
  // never participate in rank comparisons — either nesting order is fine.
  Mutex a;
  Mutex b;
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  {
    MutexLock lb(b);
    MutexLock la(a);
  }
  EXPECT_EQ(HeldCount(), 0);
}

TEST(SyncTest, RankedAndUnrankedMixFreely) {
  Mutex ranked(lock_rank::kInvokerShard, "ranked");
  Mutex unranked;
  {
    MutexLock lr(ranked);
    MutexLock lu(unranked);
  }
  {
    MutexLock lu(unranked);
    MutexLock lr(ranked);
  }
  EXPECT_EQ(HeldCount(), 0);
}

TEST(SyncTest, MutexLockUnlockRelock) {
  Mutex mu(100, "relockable");
  MutexLock lock(mu);
  EXPECT_EQ(HeldCount(), 1);
  lock.Unlock();
  EXPECT_EQ(HeldCount(), 0);
  lock.Relock();
  EXPECT_EQ(HeldCount(), 1);
  lock.Unlock();  // destructor must not double-release
  EXPECT_EQ(HeldCount(), 0);
}

TEST(SyncTest, TryLockContendedAndFree) {
  Mutex mu(100, "trylock");
  mu.Lock();
  std::atomic<int> observed{-1};
  std::thread t([&] {
    // Contended from another thread: must fail without touching the
    // holder's bookkeeping.
    observed.store(mu.TryLock() ? 1 : 0);
  });
  t.join();
  EXPECT_EQ(observed.load(), 0);
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  EXPECT_EQ(HeldCount(), 1);
  mu.Unlock();
}

TEST(SyncTest, TryLockIsExemptFromRankOrdering) {
  // A successful TryLock never blocked, so it cannot close a deadlock
  // cycle: taking a *lower*-ranked mutex via TryLock while holding a
  // higher-ranked one is legal (the opportunistic-probe idiom).
  Mutex low(100, "low");
  Mutex high(200, "high");
  high.Lock();
  ASSERT_TRUE(low.TryLock());
  EXPECT_EQ(HeldCount(), 2);
  low.Unlock();
  high.Unlock();
}

TEST(SyncTest, PureTryLockCycleNeverAborts) {
  // Both nesting orders, both inner acquisitions via TryLock: a pure
  // try-lock cycle passes — some thread always fails fast and releases,
  // so the "cycle" cannot deadlock.
  Mutex a(100, "cycle-a");
  Mutex b(200, "cycle-b");
  {
    MutexLock la(a);
    ASSERT_TRUE(b.TryLock());  // ascending, trivially fine
    b.Unlock();
  }
  {
    MutexLock lb(b);
    ASSERT_TRUE(a.TryLock());  // descending: only legal because TryLock
    a.Unlock();
  }
  EXPECT_EQ(HeldCount(), 0);
}

TEST(SyncTest, AssertHeldPassesUnderLock) {
  Mutex mu(100, "asserted");
  MutexLock lock(mu);
  mu.AssertHeld();  // must not abort
}

TEST(SyncTest, SharedMutexAllowsConcurrentReaders) {
  SharedMutex mu(100, "shared");
  mu.ReaderLock();
  std::atomic<bool> reader_entered{false};
  std::thread t([&] {
    ReaderMutexLock lock(mu);
    mu.AssertHeld();
    reader_entered.store(true, std::memory_order_release);
  });
  t.join();
  EXPECT_TRUE(reader_entered.load(std::memory_order_acquire));
  mu.ReaderUnlock();
  {
    WriterMutexLock lock(mu);
    mu.AssertHeld();
  }
  EXPECT_EQ(HeldCount(), 0);
}

TEST(SyncTest, CondVarWaitAndNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    EXPECT_TRUE(ready);
    EXPECT_EQ(HeldCount(), 1);  // the wait reacquired through the wrapper
  }
  producer.join();
  EXPECT_EQ(HeldCount(), 0);
}

TEST(SyncTest, CondVarWaitForTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_EQ(cv.WaitFor(mu, 1e-3), std::cv_status::timeout);
  EXPECT_EQ(HeldCount(), 1);
}

TEST(SyncTest, RanksAreScopedPerThread) {
  // A thread may take "high" while another thread holds "low": the order
  // constraint is per-thread, not global.
  Mutex low(100, "low");
  Mutex high(200, "high");
  MutexLock hold_high(high);
  std::thread t([&] {
    MutexLock lock(low);  // fresh thread, empty held stack: legal
  });
  t.join();
}

TEST(SyncLockOrderDeathTest, InvertedRankOrderAbortsNamingBothSites) {
  if (!SyncChecksEnabled()) GTEST_SKIP() << "checker compiled out";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex low(100, "invoker-shard-like");
  Mutex high(200, "queue-like");
  // The diagnostic must carry both the incoming acquisition site and the
  // prior one — each with file:line pointing back into this test.
  EXPECT_DEATH(
      {
        high.Lock();
        low.Lock();
      },
      "lock-order inversion: acquiring \"invoker-shard-like\" \\(rank 100\\) "
      "at .*sync_test\\.cc:[0-9]+ while holding \"queue-like\" \\(rank "
      "200\\) acquired at .*sync_test\\.cc:[0-9]+");
}

TEST(SyncLockOrderDeathTest, EqualRanksNeverNest) {
  if (!SyncChecksEnabled()) GTEST_SKIP() << "checker compiled out";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Same-rank mutexes (invoker shards, per-node stores) are declared
  // never-nested in lock_ranks.h; the checker enforces the declaration.
  Mutex a(300, "shard-a");
  Mutex b(300, "shard-b");
  EXPECT_DEATH(
      {
        a.Lock();
        b.Lock();
      },
      "lock-order inversion.*\"shard-b\" \\(rank 300\\).*holding "
      "\"shard-a\" \\(rank 300\\)");
}

TEST(SyncLockOrderDeathTest, BlockingInversionAbortsEvenAfterTryLocks) {
  if (!SyncChecksEnabled()) GTEST_SKIP() << "checker compiled out";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The try-lock exemption is per-acquisition, not per-mutex: the same
  // pair of mutexes that legally nested via TryLock still aborts the
  // moment the out-of-rank acquisition is a *blocking* Lock.
  Mutex low(100, "try-then-block-low");
  Mutex high(200, "try-then-block-high");
  EXPECT_DEATH(
      {
        high.Lock();
        if (low.TryLock()) low.Unlock();  // exempt probe, must not abort
        low.Lock();                       // blocking inversion: abort
      },
      "lock-order inversion: acquiring \"try-then-block-low\" "
      "\\(rank 100\\)");
}

TEST(SyncLockOrderDeathTest, RecursiveTryLockAborts) {
  if (!SyncChecksEnabled()) GTEST_SKIP() << "checker compiled out";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // try_lock on a mutex this thread already holds is UB for std::mutex;
  // the exemption must not swallow the recursion diagnostic.
  Mutex mu(100, "try-recursed");
  EXPECT_DEATH(
      {
        mu.Lock();
        (void)mu.TryLock();
      },
      "recursive lock: acquiring \"try-recursed\"");
}

TEST(SyncLockOrderDeathTest, RecursiveLockAborts) {
  if (!SyncChecksEnabled()) GTEST_SKIP() << "checker compiled out";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu(100, "recursed");
  EXPECT_DEATH(
      {
        mu.Lock();
        mu.Lock();
      },
      "recursive lock: acquiring \"recursed\"");
}

TEST(SyncLockOrderDeathTest, AssertHeldAbortsWhenNotHeld) {
  if (!SyncChecksEnabled()) GTEST_SKIP() << "checker compiled out";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu(100, "unheld");
  EXPECT_DEATH(mu.AssertHeld(),
               "AssertHeld failed: mutex not held by this thread: "
               "\"unheld\"");
}

TEST(SyncLockOrderDeathTest, AssertHeldAbortsWhenHeldByAnotherThread) {
  if (!SyncChecksEnabled()) GTEST_SKIP() << "checker compiled out";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Held-ness is per-thread: another thread's hold must not satisfy the
  // calling thread's assertion.
  EXPECT_DEATH(
      {
        Mutex mu(100, "other-thread");
        std::atomic<bool> locked{false};
        std::atomic<bool> done{false};
        std::thread holder([&] {
          mu.Lock();
          locked.store(true, std::memory_order_release);
          while (!done.load(std::memory_order_acquire)) {
          }
          mu.Unlock();
        });
        while (!locked.load(std::memory_order_acquire)) {
        }
        mu.AssertHeld();  // aborts: *this* thread does not hold it
        done.store(true, std::memory_order_release);
        holder.join();
      },
      "AssertHeld failed");
}

}  // namespace
}  // namespace joinopt
