#include "joinopt/common/ewma.h"

#include <gtest/gtest.h>

namespace joinopt {
namespace {

TEST(EwmaTest, FirstObservationInitializesDirectly) {
  Ewma e(0.2);
  EXPECT_FALSE(e.initialized());
  e.Observe(10.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(EwmaTest, FollowsPaperFormula) {
  // value_{t+1} = alpha * measured + (1 - alpha) * value_t (Section 3.2)
  Ewma e(0.25);
  e.Observe(100.0);
  e.Observe(0.0);
  EXPECT_DOUBLE_EQ(e.value(), 0.25 * 0.0 + 0.75 * 100.0);
  e.Observe(200.0);
  EXPECT_DOUBLE_EQ(e.value(), 0.25 * 200.0 + 0.75 * 75.0);
}

TEST(EwmaTest, ValueOrFallsBackBeforeInit) {
  Ewma e;
  EXPECT_DOUBLE_EQ(e.ValueOr(3.5), 3.5);
  e.Observe(1.0);
  EXPECT_DOUBLE_EQ(e.ValueOr(3.5), 1.0);
}

TEST(EwmaTest, ConvergesToConstantInput) {
  Ewma e(0.3);
  for (int i = 0; i < 100; ++i) e.Observe(42.0);
  EXPECT_NEAR(e.value(), 42.0, 1e-9);
}

TEST(EwmaTest, SmoothsSpikes) {
  // A single spike should move the estimate by exactly alpha * spike.
  Ewma e(0.1);
  for (int i = 0; i < 50; ++i) e.Observe(1.0);
  e.Observe(101.0);
  EXPECT_NEAR(e.value(), 1.0 + 0.1 * 100.0, 1e-9);
}

TEST(EwmaTest, AlphaOneTracksExactly) {
  Ewma e(1.0);
  e.Observe(5.0);
  e.Observe(9.0);
  EXPECT_DOUBLE_EQ(e.value(), 9.0);
}

TEST(EwmaTest, ResetForgets) {
  Ewma e(0.5);
  e.Observe(10.0);
  e.Reset();
  EXPECT_FALSE(e.initialized());
  EXPECT_EQ(e.count(), 0);
  e.Observe(2.0);
  EXPECT_DOUBLE_EQ(e.value(), 2.0);
}

TEST(EwmaTest, CountsObservations) {
  Ewma e;
  for (int i = 0; i < 7; ++i) e.Observe(static_cast<double>(i));
  EXPECT_EQ(e.count(), 7);
}

}  // namespace
}  // namespace joinopt
