// Property tests for the compact per-key storage layer (DESIGN.md §14):
// FlatMap driven against std::unordered_map with randomized
// insert/erase/find/iterate sequences — including deletion-heavy phases
// that would expose tombstone accumulation or backward-shift bugs —
// IntrusiveMinHeap driven against std::multimap (including FIFO ordering
// among equal keys), and Arena alignment/recycling invariants.
#include "joinopt/common/flat_map.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "joinopt/common/arena.h"
#include "joinopt/common/intrusive_heap.h"
#include "joinopt/common/random.h"

namespace joinopt {
namespace {

// ---------------------------------------------------------------------------
// Arena

TEST(ArenaTest, AlignmentIsRespected) {
  Arena arena(4096);
  for (size_t align : {size_t{1}, size_t{2}, size_t{8}, size_t{16},
                       size_t{64}}) {
    for (int i = 0; i < 10; ++i) {
      void* p = arena.Allocate(24 + i, align);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
          << "align=" << align;
    }
  }
}

TEST(ArenaTest, ExactSizeBlocksAreRecycled) {
  Arena arena;
  void* a = arena.Allocate(256, 8);
  arena.Free(a, 256);
  void* b = arena.Allocate(256, 8);
  EXPECT_EQ(a, b);  // same-size request reuses the freed block
  // A different size must not reuse it.
  void* c = arena.Allocate(128, 8);
  EXPECT_NE(c, a);
}

TEST(ArenaTest, StatsTrackAllocationAndChunks) {
  Arena arena(4096);
  EXPECT_EQ(arena.stats().chunks, 0u);
  arena.Allocate(100);
  EXPECT_EQ(arena.stats().chunks, 1u);
  EXPECT_EQ(arena.stats().allocated_bytes, 100u);
  void* p = arena.Allocate(50);
  arena.Free(p, 50);
  EXPECT_EQ(arena.stats().allocated_bytes, 100u);
  // An allocation larger than the chunk size gets its own chunk.
  arena.Allocate(1 << 16);
  EXPECT_EQ(arena.stats().chunks, 2u);
  EXPECT_GE(arena.stats().reserved_bytes, (1u << 16) + 4096u);
}

TEST(ArenaTest, LargeAllocationsLandInDedicatedChunks) {
  Arena arena(4096);
  void* p = arena.Allocate(1 << 20, 64);
  EXPECT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u);
}

// ---------------------------------------------------------------------------
// FlatMap

struct Payload {
  uint64_t a = 0;
  uint32_t b = 0;
  bool operator==(const Payload& o) const { return a == o.a && b == o.b; }
};

std::vector<std::pair<Key, Payload>> Sorted(
    const std::unordered_map<Key, Payload>& m) {
  std::vector<std::pair<Key, Payload>> v(m.begin(), m.end());
  std::sort(v.begin(), v.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  return v;
}

std::vector<std::pair<Key, Payload>> Sorted(const FlatMap<Payload>& m) {
  std::vector<std::pair<Key, Payload>> v;
  v.reserve(m.size());
  m.ForEach([&](Key k, const Payload& p) { v.emplace_back(k, p); });
  std::sort(v.begin(), v.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  return v;
}

void RunParityWorkload(FlatMap<Payload>& map, uint64_t seed, int rounds,
                       Key key_space, double erase_bias) {
  Rng rng(seed);
  std::unordered_map<Key, Payload> ref;
  for (int round = 0; round < rounds; ++round) {
    Key k = rng.Next() % key_space;
    double op = rng.NextDouble();
    if (op < erase_bias) {
      bool erased_ref = ref.erase(k) > 0;
      bool erased = map.Erase(k);
      ASSERT_EQ(erased, erased_ref) << "round " << round << " key " << k;
    } else if (op < erase_bias + 0.5) {
      auto [v, inserted] = map.TryEmplace(k);
      auto [it, inserted_ref] = ref.try_emplace(k);
      ASSERT_EQ(inserted, inserted_ref) << "round " << round;
      v->a = k * 3;
      v->b = static_cast<uint32_t>(round);
      it->second = *v;
    } else {
      Payload* v = map.Find(k);
      auto it = ref.find(k);
      ASSERT_EQ(v != nullptr, it != ref.end()) << "round " << round;
      if (v != nullptr) {
        ASSERT_EQ(*v, it->second) << "round " << round;
      }
    }
    ASSERT_EQ(map.size(), ref.size());
  }
  EXPECT_EQ(Sorted(map), Sorted(ref));
}

TEST(FlatMapTest, RandomizedParityMixedOps) {
  FlatMap<Payload> map;
  RunParityWorkload(map, /*seed=*/1, /*rounds=*/60000, /*key_space=*/5000,
                    /*erase_bias=*/0.25);
}

TEST(FlatMapTest, RandomizedParityDeletionHeavy) {
  // Erase-dominant mix: backward-shift deletion must not accumulate
  // tombstones or lose reachable keys under sustained churn.
  FlatMap<Payload> map;
  RunParityWorkload(map, /*seed=*/2, /*rounds=*/80000, /*key_space=*/800,
                    /*erase_bias=*/0.45);
}

TEST(FlatMapTest, RandomizedParityWithArena) {
  Arena arena;
  FlatMap<Payload> map(&arena, /*seed=*/0x9E3779B97F4A7C15ull);
  RunParityWorkload(map, /*seed=*/3, /*rounds=*/60000, /*key_space=*/5000,
                    /*erase_bias=*/0.25);
  EXPECT_GT(arena.stats().allocated_bytes, 0u);
}

TEST(FlatMapTest, RandomizedParityHighLoadFactor) {
  FlatMap<Payload> map;
  map.set_max_load_factor(0.95);
  RunParityWorkload(map, /*seed=*/4, /*rounds=*/60000, /*key_space=*/3000,
                    /*erase_bias=*/0.3);
}

TEST(FlatMapTest, AdversarialKeysShareLowBits) {
  // Keys differing only above the table mask stress the probe chain.
  FlatMap<Payload> map;
  std::unordered_map<Key, Payload> ref;
  for (Key i = 0; i < 2000; ++i) {
    Key k = i << 40;
    map.TryEmplace(k).first->a = i;
    ref[k].a = i;
  }
  for (Key i = 0; i < 2000; i += 2) {
    ASSERT_TRUE(map.Erase(i << 40));
    ref.erase(i << 40);
  }
  EXPECT_EQ(Sorted(map), Sorted(ref));
}

TEST(FlatMapTest, ValuePointersAndHandlesStableAcrossRehash) {
  FlatMap<Payload> map;
  std::vector<std::pair<Key, FlatMap<Payload>::Handle>> handles;
  std::vector<std::pair<Key, Payload*>> ptrs;
  for (Key k = 0; k < 10000; ++k) {
    auto [h, inserted] = map.TryEmplaceHandle(k);
    ASSERT_TRUE(inserted);
    map.EntryAt(h).value.a = k + 7;
    handles.emplace_back(k, h);
    ptrs.emplace_back(k, &map.EntryAt(h).value);
  }
  // Many rehashes have happened since the first inserts; entries must not
  // have moved.
  for (const auto& [k, h] : handles) {
    ASSERT_EQ(map.EntryAt(h).key, k);
    ASSERT_EQ(map.EntryAt(h).value.a, k + 7);
    ASSERT_EQ(map.FindHandle(k), h);
  }
  for (const auto& [k, p] : ptrs) {
    ASSERT_EQ(map.Find(k), p);
  }
}

TEST(FlatMapTest, HandlesAreRecycledAfterErase) {
  FlatMap<Payload> map;
  auto [h1, i1] = map.TryEmplaceHandle(42);
  ASSERT_TRUE(i1);
  map.Erase(42);
  auto [h2, i2] = map.TryEmplaceHandle(99);
  ASSERT_TRUE(i2);
  EXPECT_EQ(h2, h1);  // LIFO freelist reuse keeps entries dense
}

TEST(FlatMapTest, ReservePreventsRehash) {
  FlatMap<Payload> map;
  map.Reserve(10000);
  size_t cap = map.capacity();
  EXPECT_GE(static_cast<double>(cap) * map.max_load_factor(), 10000.0);
  for (Key k = 0; k < 10000; ++k) map.TryEmplace(k);
  EXPECT_EQ(map.capacity(), cap);
}

TEST(FlatMapTest, EraseIfMatchesReference) {
  Rng rng(7);
  FlatMap<Payload> map;
  std::unordered_map<Key, Payload> ref;
  for (int i = 0; i < 20000; ++i) {
    Key k = rng.Next() % 30000;
    map.TryEmplace(k).first->a = k;
    ref[k].a = k;
  }
  auto pred = [](Key k, const Payload&) { return k % 3 == 0; };
  size_t expect_erased = 0;
  for (auto it = ref.begin(); it != ref.end();) {
    if (pred(it->first, it->second)) {
      it = ref.erase(it);
      ++expect_erased;
    } else {
      ++it;
    }
  }
  size_t erased = map.EraseIf(pred);
  EXPECT_EQ(erased, expect_erased);
  EXPECT_EQ(Sorted(map), Sorted(ref));
  // Survivor pointers stay valid and the table still behaves.
  for (const auto& [k, p] : ref) {
    Payload* v = map.Find(k);
    ASSERT_NE(v, nullptr);
    ASSERT_EQ(v->a, p.a);
  }
}

TEST(FlatMapTest, EraseIfEverything) {
  FlatMap<Payload> map;
  for (Key k = 0; k < 5000; ++k) map.TryEmplace(k);
  EXPECT_EQ(map.EraseIf([](Key, const Payload&) { return true; }), 5000u);
  EXPECT_TRUE(map.empty());
  // Table remains usable after a full sweep.
  map.TryEmplace(1);
  EXPECT_NE(map.Find(1), nullptr);
}

TEST(FlatMapTest, ClearResetsAndRemainsUsable) {
  Arena arena;
  FlatMap<Payload> map(&arena);
  for (Key k = 0; k < 1000; ++k) map.TryEmplace(k);
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.Find(5), nullptr);
  for (Key k = 0; k < 1000; ++k) map.TryEmplace(k).first->a = k;
  EXPECT_EQ(map.size(), 1000u);
  EXPECT_EQ(map.Find(999)->a, 999u);
}

TEST(FlatMapTest, MemoryBytesIsCompact) {
  FlatMap<Payload> map;
  const size_t n = 100000;
  for (Key k = 0; k < n; ++k) map.TryEmplace(k);
  // 6 bytes/slot at >=50% load plus 24-byte entries: well under the
  // ~72 bytes/key an unordered_map node pays for this payload.
  EXPECT_LT(map.MemoryBytes() / n, 48u);
}

// ---------------------------------------------------------------------------
// IntrusiveMinHeap

// Test entries ordered by (value, seq): seq reproduces multimap FIFO
// ordering among equal values, mirroring how TieredCache uses the heap.
struct HeapEntry {
  double value = 0;
  uint32_t seq = 0;
  uint32_t pos = IntrusiveMinHeap<int>::kNoPos;
};

struct HeapAdapter {
  std::vector<HeapEntry>* entries;
  bool Less(uint32_t a, uint32_t b) const {
    const HeapEntry& x = (*entries)[a];
    const HeapEntry& y = (*entries)[b];
    if (x.value != y.value) return x.value < y.value;
    return x.seq < y.seq;
  }
  void SetPos(uint32_t handle, uint32_t pos) const {
    (*entries)[handle].pos = pos;
  }
};

using TestHeap = IntrusiveMinHeap<HeapAdapter>;

TEST(IntrusiveHeapTest, FifoAmongEqualKeysMatchesMultimap) {
  // multimap::emplace inserts at upper_bound: equal keys pop in insertion
  // order. The heap must reproduce that via the seq tie-break.
  std::vector<HeapEntry> entries;
  TestHeap heap(HeapAdapter{&entries});
  std::multimap<double, uint32_t> ref;
  uint32_t seq = 0;
  for (double v : {5.0, 1.0, 5.0, 3.0, 5.0, 1.0, 3.0}) {
    uint32_t h = static_cast<uint32_t>(entries.size());
    entries.push_back(HeapEntry{v, seq++, TestHeap::kNoPos});
    heap.Push(h);
    ref.emplace(v, h);
  }
  while (!ref.empty()) {
    uint32_t h = heap.MinHandle();
    ASSERT_EQ(h, ref.begin()->second);
    heap.Pop();
    ref.erase(ref.begin());
  }
  EXPECT_TRUE(heap.empty());
}

TEST(IntrusiveHeapTest, RandomizedParityWithUpdatesAndRemovals) {
  Rng rng(11);
  std::vector<HeapEntry> entries;
  TestHeap heap(HeapAdapter{&entries});
  // Reference: multimap keyed by (value, seq) -> handle. Erase/update use
  // the stored (value, seq) to find the exact node, as TieredCache did
  // with stored iterators.
  std::map<std::pair<double, uint32_t>, uint32_t> ref;
  std::vector<uint32_t> live;
  uint32_t seq = 0;
  for (int round = 0; round < 40000; ++round) {
    double op = rng.NextDouble();
    if (op < 0.4 || live.empty()) {
      uint32_t h = static_cast<uint32_t>(entries.size());
      double v = static_cast<double>(rng.Next() % 64);  // force ties
      entries.push_back(HeapEntry{v, seq++, TestHeap::kNoPos});
      heap.Push(h);
      ref.emplace(std::make_pair(v, entries[h].seq), h);
      live.push_back(h);
    } else if (op < 0.7) {
      // Reorder a random live entry to a new value (benefit update).
      uint32_t idx = static_cast<uint32_t>(rng.Next() % live.size());
      uint32_t h = live[idx];
      ref.erase(std::make_pair(entries[h].value, entries[h].seq));
      entries[h].value = static_cast<double>(rng.Next() % 64);
      entries[h].seq = seq++;  // re-emplace semantics: new FIFO position
      heap.Update(entries[h].pos);
      ref.emplace(std::make_pair(entries[h].value, entries[h].seq), h);
    } else if (op < 0.85) {
      // Remove a random live entry by its stored position.
      uint32_t idx = static_cast<uint32_t>(rng.Next() % live.size());
      uint32_t h = live[idx];
      ref.erase(std::make_pair(entries[h].value, entries[h].seq));
      heap.Remove(entries[h].pos);
      live[idx] = live.back();
      live.pop_back();
    } else {
      // Pop the min.
      uint32_t h = heap.MinHandle();
      ASSERT_EQ(h, ref.begin()->second) << "round " << round;
      heap.Pop();
      ref.erase(ref.begin());
      live.erase(std::find(live.begin(), live.end(), h));
    }
    ASSERT_EQ(heap.size(), ref.size());
    if (!ref.empty()) {
      ASSERT_EQ(heap.MinHandle(), ref.begin()->second) << "round " << round;
    }
    // Every live entry's stored position must point back at itself.
    if (round % 1000 == 0) {
      for (uint32_t h : live) {
        ASSERT_LT(entries[h].pos, heap.size());
        ASSERT_EQ(heap.data()[entries[h].pos], h);
      }
    }
  }
}

TEST(IntrusiveHeapTest, DrainYieldsSortedOrder) {
  Rng rng(13);
  std::vector<HeapEntry> entries;
  TestHeap heap(HeapAdapter{&entries});
  for (uint32_t i = 0; i < 5000; ++i) {
    entries.push_back(
        HeapEntry{rng.NextDouble(), i, TestHeap::kNoPos});
    heap.Push(i);
  }
  double prev = -1.0;
  while (!heap.empty()) {
    double v = entries[heap.MinHandle()].value;
    ASSERT_GE(v, prev);
    prev = v;
    heap.Pop();
  }
}

}  // namespace
}  // namespace joinopt
