#include "joinopt/common/units.h"

#include <gtest/gtest.h>

namespace joinopt {
namespace {

TEST(UnitsTest, ByteHelpers) {
  EXPECT_DOUBLE_EQ(KiB(1), 1024.0);
  EXPECT_DOUBLE_EQ(MiB(1), 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(GiB(2), 2.0 * 1024 * 1024 * 1024);
}

TEST(UnitsTest, TimeHelpers) {
  EXPECT_DOUBLE_EQ(Microseconds(5), 5e-6);
  EXPECT_DOUBLE_EQ(Milliseconds(100), 0.1);
  EXPECT_DOUBLE_EQ(Minutes(2), 120.0);
}

TEST(UnitsTest, BandwidthHelpers) {
  EXPECT_DOUBLE_EQ(Gbps(1), 125e6);
  EXPECT_DOUBLE_EQ(Mbps(8), 1e6);
}

TEST(UnitsTest, FormatBytesPicksUnit) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KiB");
  EXPECT_EQ(FormatBytes(3.5 * kMiB), "3.50 MiB");
  EXPECT_EQ(FormatBytes(1.25 * kGiB), "1.25 GiB");
}

TEST(UnitsTest, FormatDurationPicksUnit) {
  EXPECT_EQ(FormatDuration(90.0), "1.5 min");
  EXPECT_EQ(FormatDuration(2.5), "2.50 s");
  EXPECT_EQ(FormatDuration(0.05), "50.00 ms");
  EXPECT_EQ(FormatDuration(3e-6), "3.00 us");
}

}  // namespace
}  // namespace joinopt
