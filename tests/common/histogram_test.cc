#include "joinopt/common/histogram.h"

#include <gtest/gtest.h>

namespace joinopt {
namespace {

TEST(SummaryStatsTest, EmptyIsZero) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SummaryStatsTest, BasicMoments) {
  SummaryStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Observe(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryStatsTest, CvZeroForConstant) {
  SummaryStats s;
  for (int i = 0; i < 10; ++i) s.Observe(3.0);
  EXPECT_NEAR(s.cv(), 0.0, 1e-12);
}

TEST(SummaryStatsTest, MergeMatchesCombinedStream) {
  SummaryStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    double x = static_cast<double>(i * i % 17);
    if (i % 2 == 0) {
      a.Observe(x);
    } else {
      b.Observe(x);
    }
    all.Observe(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryStatsTest, MergeWithEmptyIsIdentity) {
  SummaryStats a, empty;
  a.Observe(1.0);
  a.Observe(2.0);
  double mean = a.mean();
  a.Merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  EXPECT_EQ(a.count(), 2);

  SummaryStats c;
  c.Merge(a);
  EXPECT_EQ(c.count(), 2);
  EXPECT_DOUBLE_EQ(c.mean(), mean);
}

TEST(HistogramTest, BucketsCountCorrectly) {
  Histogram h({1.0, 2.0, 3.0});
  for (double x : {0.5, 1.5, 1.7, 2.5, 3.5, 10.0}) h.Observe(x);
  EXPECT_EQ(h.bucket_count(0), 1);  // < 1
  EXPECT_EQ(h.bucket_count(1), 2);  // [1, 2)
  EXPECT_EQ(h.bucket_count(2), 1);  // [2, 3)
  EXPECT_EQ(h.bucket_count(3), 2);  // >= 3
  EXPECT_EQ(h.stats().count(), 6);
}

TEST(HistogramTest, BoundaryValueGoesToUpperBucket) {
  Histogram h({1.0});
  h.Observe(1.0);
  EXPECT_EQ(h.bucket_count(0), 0);
  EXPECT_EQ(h.bucket_count(1), 1);
}

TEST(HistogramTest, QuantileInterpolates) {
  Histogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 100; ++i) h.Observe(5.0);   // bucket 0
  for (int i = 0; i < 100; ++i) h.Observe(15.0);  // bucket 1
  double median = h.Quantile(0.5);
  EXPECT_GE(median, 5.0);
  EXPECT_LE(median, 15.0);
  EXPECT_GE(h.Quantile(0.99), 10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 5.0);
}

TEST(HistogramTest, QuantileOnEmptyIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, ToStringMentionsCount) {
  Histogram h({1.0});
  h.Observe(0.5);
  EXPECT_NE(h.ToString().find("count=1"), std::string::npos);
}

}  // namespace
}  // namespace joinopt
