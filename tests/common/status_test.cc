#include "joinopt/common/status.h"

#include <gtest/gtest.h>

namespace joinopt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "key 42");
  EXPECT_EQ(s.ToString(), "NotFound: key 42");
}

TEST(StatusTest, FactoryCodesMatch) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Aborted("").code(), StatusCode::kAborted);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(0), 7);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnNotOk(int x) {
  JOINOPT_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_TRUE(UsesReturnNotOk(-1).IsInvalidArgument());
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  JOINOPT_ASSIGN_OR_RETURN(int h, Half(x));
  JOINOPT_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(StatusMacroTest, AssignOrReturnChains) {
  auto r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
}

}  // namespace
}  // namespace joinopt
