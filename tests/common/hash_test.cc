#include "joinopt/common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace joinopt {
namespace {

TEST(HashTest, Mix64IsDeterministic) {
  EXPECT_EQ(Mix64(12345), Mix64(12345));
}

TEST(HashTest, Mix64DecorrelatesSequentialKeys) {
  // Sequential keys must spread across partitions roughly evenly.
  const int partitions = 10;
  std::vector<int> counts(partitions, 0);
  const int n = 100000;
  for (uint64_t k = 0; k < static_cast<uint64_t>(n); ++k) {
    ++counts[Mix64(k) % partitions];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / partitions, n / partitions * 0.05);
  }
}

TEST(HashTest, Mix64IsInjectiveOnSample) {
  std::set<uint64_t> seen;
  for (uint64_t k = 0; k < 10000; ++k) seen.insert(Mix64(k));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(HashTest, Fnv1aKnownVector) {
  // FNV-1a 64-bit test vectors.
  EXPECT_EQ(Fnv1a(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(Fnv1a("a"), 0xAF63DC4C8601EC8CULL);
}

TEST(HashTest, Fnv1aDistinguishesTokens) {
  EXPECT_NE(Fnv1a("michael jordan"), Fnv1a("michael jordon"));
  EXPECT_NE(Fnv1a("ab"), Fnv1a("ba"));
}

TEST(HashTest, Fnv1aIsConstexpr) {
  constexpr uint64_t h = Fnv1a("compile-time");
  static_assert(h != 0);
  EXPECT_EQ(h, Fnv1a("compile-time"));
}

}  // namespace
}  // namespace joinopt
