#include "joinopt/common/random.h"

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <vector>

namespace joinopt {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(7);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) ++seen[rng.NextBounded(10)];
  for (int count : seen) EXPECT_GT(count, 800);  // ~1000 expected each
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ExponentialHasExpectedMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.Pareto(2.0, 3.0), 3.0);
  }
}

TEST(RngTest, ForkGivesIndependentStream) {
  Rng a(9);
  Rng b = a.Fork();
  // The fork must not replay the parent's sequence.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(ZipfTest, UniformWhenZIsZero) {
  ZipfDistribution zipf(10, 0.0);
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
}

TEST(ZipfTest, PmfSumsToOne) {
  for (double z : {0.0, 0.5, 1.0, 1.5}) {
    ZipfDistribution zipf(1000, z);
    double sum = 0;
    for (uint64_t i = 0; i < 1000; ++i) sum += zipf.Pmf(i);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "z=" << z;
  }
}

TEST(ZipfTest, PmfMonotoneDecreasing) {
  ZipfDistribution zipf(100, 1.2);
  for (uint64_t i = 1; i < 100; ++i) {
    EXPECT_LE(zipf.Pmf(i), zipf.Pmf(i - 1));
  }
}

class ZipfSampleMatchesPmfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSampleMatchesPmfTest, EmpiricalFrequencyTracksPmf) {
  const double z = GetParam();
  const uint64_t domain = 500;
  ZipfDistribution zipf(domain, z);
  Rng rng(101);
  std::vector<int64_t> counts(domain, 0);
  const int64_t n = 400000;
  for (int64_t i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  // Compare the head of the distribution (the heavy hitters the paper's
  // techniques key on) against the analytic PMF.
  for (uint64_t rank = 0; rank < 10; ++rank) {
    double expected = zipf.Pmf(rank) * static_cast<double>(n);
    if (expected < 100) continue;
    EXPECT_NEAR(counts[rank], expected, expected * 0.1)
        << "z=" << z << " rank=" << rank;
  }
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSampleMatchesPmfTest,
                         ::testing::Values(0.0, 0.5, 0.9, 1.0, 1.2, 1.5));

TEST(ZipfTest, SingleElementDomain) {
  ZipfDistribution zipf(1, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
  EXPECT_NEAR(zipf.Pmf(0), 1.0, 1e-12);
}

TEST(ZipfTest, SamplesStayInDomain) {
  ZipfDistribution zipf(42, 1.5);
  Rng rng(77);
  for (int i = 0; i < 20000; ++i) EXPECT_LT(zipf.Sample(rng), 42u);
}

TEST(ShuffleTest, PermutationPreservesElements) {
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  Rng rng(21);
  Shuffle(v, rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
  // And it actually moved something.
  bool moved = false;
  for (int i = 0; i < 100; ++i) {
    if (v[static_cast<size_t>(i)] != i) moved = true;
  }
  EXPECT_TRUE(moved);
}

}  // namespace
}  // namespace joinopt
