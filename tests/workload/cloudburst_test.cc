#include "joinopt/workload/cloudburst.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "joinopt/harness/runner.h"

namespace joinopt {
namespace {

CloudBurstConfig SmallConfig() {
  CloudBurstConfig c;
  c.reference_bases = 50000;
  c.reads = 5000;
  return c;
}

TEST(CloudBurstTest, IndexCoversReference) {
  CloudBurstConfig cfg = SmallConfig();
  NgramIndex index = GenerateCloudBurst(cfg);
  int64_t total = std::accumulate(index.occurrences.begin(),
                                  index.occurrences.end(), int64_t{0});
  EXPECT_EQ(total, cfg.reference_bases - cfg.ngram + 1);
  EXPECT_EQ(index.keys.size(), index.occurrences.size());
  EXPECT_EQ(index.read_stream.size(), static_cast<size_t>(cfg.reads));
}

TEST(CloudBurstTest, RepeatsCreateHeavyHitterNgrams) {
  NgramIndex index = GenerateCloudBurst(SmallConfig());
  int32_t max_occ = *std::max_element(index.occurrences.begin(),
                                      index.occurrences.end());
  double mean_occ =
      static_cast<double>(std::accumulate(index.occurrences.begin(),
                                          index.occurrences.end(), int64_t{0})) /
      static_cast<double>(index.occurrences.size());
  // Planted repeats make some n-grams orders of magnitude more frequent.
  EXPECT_GT(max_occ, 50 * mean_occ);
}

TEST(CloudBurstTest, ReadsResolveInIndex) {
  NgramIndex index = GenerateCloudBurst(SmallConfig());
  NodeLayout layout = NodeLayout::Of(2, 2);
  GeneratedWorkload w = ToCloudBurstWorkload(index, layout);
  for (const auto& slice : w.inputs) {
    for (const InputTuple& t : slice) {
      EXPECT_NE(w.stores[0]->Find(t.keys[0]), nullptr);
    }
  }
}

TEST(CloudBurstTest, UdoCostScalesWithOccurrences) {
  CloudBurstConfig cfg = SmallConfig();
  NgramIndex index = GenerateCloudBurst(cfg);
  NodeLayout layout = NodeLayout::Of(2, 2);
  GeneratedWorkload w = ToCloudBurstWorkload(index, layout);
  for (size_t i = 0; i < index.keys.size(); ++i) {
    const StoredItem* item = w.stores[0]->Find(index.keys[i]);
    ASSERT_NE(item, nullptr);
    EXPECT_NEAR(item->udf_cost,
                cfg.match_cost_per_hit * index.occurrences[i], 1e-12);
  }
}

TEST(CloudBurstTest, Deterministic) {
  NgramIndex a = GenerateCloudBurst(SmallConfig());
  NgramIndex b = GenerateCloudBurst(SmallConfig());
  EXPECT_EQ(a.read_stream, b.read_stream);
  EXPECT_EQ(a.total_candidate_alignments, b.total_candidate_alignments);
}

TEST(CloudBurstTest, FrameworkMitigatesAlignmentSkew) {
  // Appendix A's claim: map-side n-gram distribution (FO) evens out the
  // UDO load that concentrates on the reducers owning the repeat n-grams.
  CloudBurstConfig cfg = SmallConfig();
  cfg.reads = 8000;
  NgramIndex index = GenerateCloudBurst(cfg);
  NodeLayout layout = NodeLayout::Of(3, 3);
  GeneratedWorkload w = ToCloudBurstWorkload(index, layout);
  FrameworkRunConfig run;
  run.cluster.num_compute_nodes = 3;
  run.cluster.num_data_nodes = 3;
  run.cluster.machine.cores = 4;
  JobResult fd = RunFrameworkJob(w, Strategy::kFD, run);
  JobResult fo = RunFrameworkJob(w, Strategy::kFO, run);
  EXPECT_EQ(fo.tuples_processed, 8000);
  EXPECT_LE(fo.makespan, fd.makespan);
  EXPECT_LE(fo.data_cpu_skew, fd.data_cpu_skew + 0.5);
}

}  // namespace
}  // namespace joinopt
