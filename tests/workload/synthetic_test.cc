#include "joinopt/workload/synthetic.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "joinopt/common/units.h"

namespace joinopt {
namespace {

SyntheticConfig SmallConfig(SyntheticKind kind, double z) {
  SyntheticConfig c;
  c.kind = kind;
  c.zipf_z = z;
  c.tuples_per_node = 1000;
  c.num_keys = 2000;
  return c;
}

TEST(SyntheticWorkloadTest, ProfilesMatchPaperShapes) {
  SyntheticProfile dh = SyntheticProfile::For(SyntheticKind::kDataHeavy);
  SyntheticProfile ch = SyntheticProfile::For(SyntheticKind::kComputeHeavy);
  SyntheticProfile dch =
      SyntheticProfile::For(SyntheticKind::kDataComputeHeavy);
  EXPECT_DOUBLE_EQ(dh.stored_value_bytes, KiB(100));   // ~100 KB fetches
  EXPECT_LT(dh.udf_cost, Milliseconds(1));             // CPU-light
  EXPECT_DOUBLE_EQ(ch.udf_cost, Milliseconds(100));    // ~100 ms UDFs
  EXPECT_LT(ch.stored_value_bytes, KiB(10));           // small values
  EXPECT_DOUBLE_EQ(dch.stored_value_bytes, KiB(100));
  EXPECT_DOUBLE_EQ(dch.udf_cost, Milliseconds(100));
}

TEST(SyntheticWorkloadTest, BuildsStoreAndInputs) {
  NodeLayout layout = NodeLayout::Of(4, 4);
  GeneratedWorkload w = MakeSyntheticWorkload(
      SmallConfig(SyntheticKind::kDataHeavy, 0.5), layout);
  ASSERT_EQ(w.stores.size(), 1u);
  EXPECT_EQ(w.stores[0]->total_items(), 2000u);
  ASSERT_EQ(w.inputs.size(), 4u);
  for (const auto& in : w.inputs) EXPECT_EQ(in.size(), 1000u);
  EXPECT_EQ(w.total_tuples(), 4000);
}

TEST(SyntheticWorkloadTest, AllKeysResolveInStore) {
  NodeLayout layout = NodeLayout::Of(2, 2);
  GeneratedWorkload w = MakeSyntheticWorkload(
      SmallConfig(SyntheticKind::kComputeHeavy, 1.5), layout);
  for (const auto& in : w.inputs) {
    for (const InputTuple& t : in) {
      ASSERT_EQ(t.keys.size(), 1u);
      EXPECT_NE(w.stores[0]->Find(t.keys[0]), nullptr);
    }
  }
}

TEST(SyntheticWorkloadTest, ZeroSkewIsRoughlyUniform) {
  NodeLayout layout = NodeLayout::Of(2, 2);
  SyntheticConfig cfg = SmallConfig(SyntheticKind::kDataHeavy, 0.0);
  cfg.tuples_per_node = 10000;
  cfg.num_keys = 100;
  GeneratedWorkload w = MakeSyntheticWorkload(cfg, layout);
  std::map<Key, int> counts;
  for (const auto& in : w.inputs) {
    for (const InputTuple& t : in) ++counts[t.keys[0]];
  }
  for (const auto& [k, c] : counts) EXPECT_NEAR(c, 200, 80);
}

TEST(SyntheticWorkloadTest, HighSkewConcentratesOnFewKeys) {
  NodeLayout layout = NodeLayout::Of(2, 2);
  SyntheticConfig cfg = SmallConfig(SyntheticKind::kDataHeavy, 1.5);
  cfg.tuples_per_node = 10000;
  GeneratedWorkload w = MakeSyntheticWorkload(cfg, layout);
  std::map<Key, int> counts;
  for (const auto& in : w.inputs) {
    for (const InputTuple& t : in) ++counts[t.keys[0]];
  }
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 20000 / 4);  // dominant key takes a large share
}

TEST(SyntheticWorkloadTest, DeterministicForSameSeed) {
  NodeLayout layout = NodeLayout::Of(2, 2);
  SyntheticConfig cfg = SmallConfig(SyntheticKind::kDataHeavy, 1.0);
  GeneratedWorkload a = MakeSyntheticWorkload(cfg, layout);
  GeneratedWorkload b = MakeSyntheticWorkload(cfg, layout);
  for (size_t i = 0; i < a.inputs.size(); ++i) {
    for (size_t t = 0; t < a.inputs[i].size(); ++t) {
      ASSERT_EQ(a.inputs[i][t].keys[0], b.inputs[i][t].keys[0]);
    }
  }
}

TEST(SyntheticWorkloadTest, PopularityShiftsChangeHotKeys) {
  NodeLayout layout = NodeLayout::Of(1, 2);
  SyntheticConfig cfg = SmallConfig(SyntheticKind::kDataHeavy, 1.5);
  cfg.tuples_per_node = 10000;
  cfg.popularity_shifts = 5;
  GeneratedWorkload w = MakeSyntheticWorkload(cfg, layout);
  const auto& stream = w.inputs[0];
  // Hot key of the first epoch vs the last epoch must differ.
  auto hot_key_in = [&](size_t lo, size_t hi) {
    std::map<Key, int> counts;
    for (size_t i = lo; i < hi; ++i) ++counts[stream[i].keys[0]];
    Key best = 0;
    int best_count = -1;
    for (const auto& [k, c] : counts) {
      if (c > best_count) {
        best = k;
        best_count = c;
      }
    }
    return best;
  };
  Key first = hot_key_in(0, 2000);
  Key last = hot_key_in(8000, 10000);
  EXPECT_NE(first, last);
}

TEST(SyntheticWorkloadTest, StaticDistributionKeepsHotKey) {
  NodeLayout layout = NodeLayout::Of(1, 2);
  SyntheticConfig cfg = SmallConfig(SyntheticKind::kDataHeavy, 1.5);
  cfg.tuples_per_node = 10000;
  cfg.popularity_shifts = 0;
  GeneratedWorkload w = MakeSyntheticWorkload(cfg, layout);
  // Rank 0 maps to key 0 throughout (identity permutation).
  int zero_count = 0;
  for (const InputTuple& t : w.inputs[0]) {
    if (t.keys[0] == 0) ++zero_count;
  }
  EXPECT_GT(zero_count, 2000);
}

}  // namespace
}  // namespace joinopt
