#include "joinopt/workload/entity_annotation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace joinopt {
namespace {

AnnotationConfig SmallConfig() {
  AnnotationConfig c;
  c.num_tokens = 500;
  c.documents = 200;
  c.spots_per_doc_mean = 5.0;
  return c;
}

TEST(AnnotationWorkloadTest, GeneratesSpotsAndModels) {
  AnnotationSpots spots = GenerateAnnotationSpots(SmallConfig());
  EXPECT_GT(spots.num_spots(), 500);
  EXPECT_EQ(spots.model_bytes.size(), 500u);
  EXPECT_EQ(spots.model_cost.size(), 500u);
  EXPECT_EQ(spots.documents, 200);
}

TEST(AnnotationWorkloadTest, TokenCountsMatchStream) {
  AnnotationSpots spots = GenerateAnnotationSpots(SmallConfig());
  std::vector<int64_t> recount(500, 0);
  for (Key t : spots.tokens) ++recount[static_cast<size_t>(t)];
  EXPECT_EQ(recount, spots.token_count);
  EXPECT_EQ(std::accumulate(recount.begin(), recount.end(), int64_t{0}),
            spots.num_spots());
}

TEST(AnnotationWorkloadTest, ModelSizesAreHeavyTailedAndRankCorrelated) {
  // Full-size token catalog (tiny corpus keeps the test fast): the paper's
  // models span bytes to hundreds of MB, so the catalog must cover orders
  // of magnitude.
  AnnotationConfig big = SmallConfig();
  big.num_tokens = 20000;
  big.documents = 10;
  AnnotationSpots catalog = GenerateAnnotationSpots(big);
  double max_size = *std::max_element(catalog.model_bytes.begin(),
                                      catalog.model_bytes.end());
  double min_size = *std::min_element(catalog.model_bytes.begin(),
                                      catalog.model_bytes.end());
  EXPECT_GT(max_size / min_size, 100.0);

  AnnotationSpots spots = GenerateAnnotationSpots(SmallConfig());
  // Low-rank (frequent) tokens carry big models on average.
  double head = 0, tail = 0;
  for (int t = 0; t < 50; ++t) head += spots.model_bytes[t];
  for (int t = 450; t < 500; ++t) tail += spots.model_bytes[t];
  EXPECT_GT(head, tail * 5);
}

TEST(AnnotationWorkloadTest, CostProportionalToSize) {
  AnnotationConfig cfg = SmallConfig();
  AnnotationSpots spots = GenerateAnnotationSpots(cfg);
  for (size_t t = 0; t < spots.model_bytes.size(); ++t) {
    EXPECT_NEAR(spots.model_cost[t],
                cfg.base_classify_cost +
                    spots.model_bytes[t] * cfg.cost_per_byte,
                1e-12);
  }
}

TEST(AnnotationWorkloadTest, FrequencyTimesCostIsSkewed) {
  // The CSAW premise: total load concentrates on few tokens.
  AnnotationSpots spots = GenerateAnnotationSpots(SmallConfig());
  std::vector<double> load(spots.model_bytes.size());
  double total = 0;
  for (size_t t = 0; t < load.size(); ++t) {
    load[t] = static_cast<double>(spots.token_count[t]) * spots.model_cost[t];
    total += load[t];
  }
  std::sort(load.rbegin(), load.rend());
  double top10 = std::accumulate(load.begin(), load.begin() + 10, 0.0);
  EXPECT_GT(top10, total * 0.3);
}

TEST(AnnotationWorkloadTest, FrameworkWorkloadRoundTrips) {
  AnnotationSpots spots = GenerateAnnotationSpots(SmallConfig());
  NodeLayout layout = NodeLayout::Of(3, 2);
  GeneratedWorkload w = ToFrameworkWorkload(spots, layout);
  ASSERT_EQ(w.stores.size(), 1u);
  EXPECT_EQ(w.stores[0]->total_items(), 500u);
  EXPECT_EQ(w.total_tuples(), spots.num_spots());
  // Store items carry the model sizes and costs.
  const StoredItem* item = w.stores[0]->Find(0);
  ASSERT_NE(item, nullptr);
  EXPECT_DOUBLE_EQ(item->size_bytes, spots.model_bytes[0]);
  EXPECT_DOUBLE_EQ(item->udf_cost, spots.model_cost[0]);
}

TEST(AnnotationWorkloadTest, Deterministic) {
  AnnotationSpots a = GenerateAnnotationSpots(SmallConfig());
  AnnotationSpots b = GenerateAnnotationSpots(SmallConfig());
  EXPECT_EQ(a.tokens, b.tokens);
  EXPECT_EQ(a.model_bytes, b.model_bytes);
}

TEST(TweetStreamTest, RoughlyHalfTweetsAnnotatable) {
  TweetStreamConfig cfg;
  cfg.tweets = 10000;
  cfg.num_tokens = 500;
  AnnotationSpots spots = GenerateTweetStream(cfg);
  // ~50% annotatable at ~1.4 spots each -> ~0.7 spots per tweet.
  double per_tweet =
      static_cast<double>(spots.num_spots()) / static_cast<double>(cfg.tweets);
  EXPECT_GT(per_tweet, 0.4);
  EXPECT_LT(per_tweet, 1.1);
  EXPECT_EQ(spots.documents, 10000);
}

TEST(TweetStreamTest, TrendingTokensShift) {
  TweetStreamConfig cfg;
  cfg.tweets = 20000;
  cfg.num_tokens = 500;
  cfg.token_zipf = 1.4;
  cfg.popularity_shifts = 4;
  AnnotationSpots spots = GenerateTweetStream(cfg);
  size_t n = spots.tokens.size();
  auto hot = [&](size_t lo, size_t hi) {
    std::vector<int> counts(500, 0);
    for (size_t i = lo; i < hi; ++i) ++counts[spots.tokens[i]];
    return static_cast<Key>(std::max_element(counts.begin(), counts.end()) -
                            counts.begin());
  };
  EXPECT_NE(hot(0, n / 4), hot(3 * n / 4, n));
}

}  // namespace
}  // namespace joinopt
