#include "joinopt/workload/tpcds_lite.h"

#include <gtest/gtest.h>

namespace joinopt {
namespace {

TEST(TpcdsLiteTest, QuerySpecsHaveExpectedJoinCounts) {
  EXPECT_EQ(GetTpcdsQuerySpec(TpcdsQuery::kQ3, 1.0).stages.size(), 2u);
  EXPECT_EQ(GetTpcdsQuerySpec(TpcdsQuery::kQ7, 1.0).stages.size(), 4u);
  EXPECT_EQ(GetTpcdsQuerySpec(TpcdsQuery::kQ27, 1.0).stages.size(), 4u);
  EXPECT_EQ(GetTpcdsQuerySpec(TpcdsQuery::kQ42, 1.0).stages.size(), 2u);
}

TEST(TpcdsLiteTest, ScaleGrowsDimensions) {
  auto s1 = GetTpcdsQuerySpec(TpcdsQuery::kQ3, 1.0);
  auto s2 = GetTpcdsQuerySpec(TpcdsQuery::kQ3, 2.0);
  EXPECT_EQ(s2.stages[0].dim_rows, 2 * s1.stages[0].dim_rows);
}

TEST(TpcdsLiteTest, SelectivitiesAreProbabilities) {
  for (TpcdsQuery q : AllTpcdsQueries()) {
    for (const auto& st : GetTpcdsQuerySpec(q, 1.0).stages) {
      EXPECT_GT(st.selectivity, 0.0) << st.dim_name;
      EXPECT_LE(st.selectivity, 1.0) << st.dim_name;
    }
  }
}

TEST(TpcdsLiteTest, WorkloadBuildsOneStorePerStage) {
  TpcdsConfig cfg;
  cfg.fact_rows_per_node = 100;
  cfg.scale = 0.1;
  NodeLayout layout = NodeLayout::Of(2, 2);
  GeneratedWorkload w = MakeTpcdsWorkload(TpcdsQuery::kQ7, cfg, layout);
  auto spec = GetTpcdsQuerySpec(TpcdsQuery::kQ7, cfg.scale);
  ASSERT_EQ(w.stores.size(), 4u);
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(w.stores[s]->total_items(),
              static_cast<size_t>(spec.stages[s].dim_rows));
  }
  EXPECT_EQ(w.stage_selectivity.size(), 4u);
}

TEST(TpcdsLiteTest, FactKeysResolveInEveryDimension) {
  TpcdsConfig cfg;
  cfg.fact_rows_per_node = 200;
  cfg.scale = 0.05;
  NodeLayout layout = NodeLayout::Of(2, 2);
  GeneratedWorkload w = MakeTpcdsWorkload(TpcdsQuery::kQ27, cfg, layout);
  for (const auto& slice : w.inputs) {
    for (const InputTuple& t : slice) {
      ASSERT_EQ(t.keys.size(), 4u);
      for (size_t s = 0; s < 4; ++s) {
        EXPECT_NE(w.stores[s]->Find(t.keys[s]), nullptr);
      }
    }
  }
}

TEST(TpcdsLiteTest, ItemForeignKeysAreSkewed) {
  TpcdsConfig cfg;
  cfg.fact_rows_per_node = 20000;
  NodeLayout layout = NodeLayout::Of(1, 2);
  GeneratedWorkload w = MakeTpcdsWorkload(TpcdsQuery::kQ3, cfg, layout);
  // Stage 1 is item (fk_zipf 0.8): the top item should appear far more
  // often than the average.
  std::unordered_map<Key, int> counts;
  for (const InputTuple& t : w.inputs[0]) ++counts[t.keys[1]];
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  double avg = static_cast<double>(w.inputs[0].size()) /
               static_cast<double>(counts.size());
  EXPECT_GT(max_count, 20 * avg);
}

TEST(TpcdsLiteTest, QueryNamesRoundTrip) {
  EXPECT_STREQ(TpcdsQueryToString(TpcdsQuery::kQ42), "Q42");
  EXPECT_EQ(AllTpcdsQueries().size(), 4u);
}

}  // namespace
}  // namespace joinopt
