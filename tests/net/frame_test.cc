// Round-trip property tests for the wire codec: every verb's request and
// response encodings survive encode → decode for randomized inputs
// (arbitrary bytes, embedded NULs, empty and large payloads, every error
// code), and malformed frames are rejected rather than misparsed.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "joinopt/common/random.h"
#include "joinopt/net/frame.h"

namespace joinopt {
namespace {

/// Random byte string (may contain NULs and arbitrary bytes).
std::string RandomBytes(Rng& rng, size_t max_len) {
  size_t len = static_cast<size_t>(rng.NextBounded(max_len + 1));
  std::string s(len, '\0');
  for (size_t i = 0; i < len; ++i) {
    s[i] = static_cast<char>(rng.NextBounded(256));
  }
  return s;
}

Status RandomError(Rng& rng) {
  // Codes 1..kAborted (0 is OK and never travels in an error slot).
  auto code = static_cast<StatusCode>(
      1 + rng.NextBounded(static_cast<uint64_t>(StatusCode::kAborted)));
  return Status(code, RandomBytes(rng, 64));
}

TEST(FrameHeaderTest, RoundTrip) {
  std::string buf;
  AppendFrameHeader(&buf, MsgType::kBatchReq, /*seq=*/0xDEADBEEF,
                    /*body_len=*/12345);
  ASSERT_EQ(buf.size(), kFrameHeaderBytes);
  auto h = ParseFrameHeader(buf, kDefaultMaxFrameBytes);
  ASSERT_TRUE(h.ok()) << h.status();
  EXPECT_EQ(h->version, kWireVersion);
  EXPECT_EQ(h->type, MsgType::kBatchReq);
  EXPECT_EQ(h->flags, 0);
  EXPECT_EQ(h->seq, 0xDEADBEEFu);
  EXPECT_EQ(h->body_len, 12345u);
}

TEST(FrameHeaderTest, RejectsBadMagicFlagsAndOversize) {
  std::string buf;
  AppendFrameHeader(&buf, MsgType::kFetchReq, 1, 100);

  std::string bad_magic = buf;
  bad_magic[0] = 'X';
  EXPECT_FALSE(ParseFrameHeader(bad_magic, kDefaultMaxFrameBytes).ok());

  std::string bad_flags = buf;
  bad_flags[6] = 1;  // reserved flags must be zero
  EXPECT_FALSE(ParseFrameHeader(bad_flags, kDefaultMaxFrameBytes).ok());

  // body_len = 100 > max_frame_bytes = 50: the length field must be
  // distrusted before any allocation happens.
  auto oversized = ParseFrameHeader(buf, /*max_frame_bytes=*/50);
  ASSERT_FALSE(oversized.ok());
  EXPECT_TRUE(oversized.status().IsResourceExhausted());

  EXPECT_FALSE(ParseFrameHeader(buf.substr(0, 8), kDefaultMaxFrameBytes).ok());
}

TEST(FrameHeaderTest, BuildFrameEnforcesSenderSideBound) {
  std::string body(1024, 'x');
  auto ok = BuildFrame(MsgType::kBatchReq, 7, body, 4096);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), kFrameHeaderBytes + body.size());

  auto too_big = BuildFrame(MsgType::kBatchReq, 7, body, 1023);
  ASSERT_FALSE(too_big.ok());
  EXPECT_TRUE(too_big.status().IsResourceExhausted());
}

TEST(FrameCodecTest, KeyRequestRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    Key key = rng.Next();
    auto decoded = DecodeKeyRequest(EncodeKeyRequest(key));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, key);
  }
  EXPECT_FALSE(DecodeKeyRequest("short").ok());
  EXPECT_FALSE(DecodeKeyRequest(std::string(9, 'a')).ok());  // trailing
}

TEST(FrameCodecTest, ExecuteRequestRoundTrip) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    Key key = rng.Next();
    std::string params = RandomBytes(rng, 512);
    auto decoded = DecodeExecuteRequest(EncodeExecuteRequest(key, params));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->key, key);
    EXPECT_EQ(decoded->params, params);
  }
}

TEST(FrameCodecTest, BatchRequestRoundTrip) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::pair<Key, std::string>> items;
    size_t n = rng.NextBounded(65);  // includes the empty batch
    for (size_t i = 0; i < n; ++i) {
      items.emplace_back(rng.Next(), RandomBytes(rng, 128));
    }
    auto decoded = DecodeBatchRequest(EncodeBatchRequest(items));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(*decoded, items);
  }
}

TEST(FrameCodecTest, BatchRequestRejectsLyingCount) {
  // A count field claiming more items than the frame could possibly hold
  // must fail parsing, not drive a giant reserve().
  std::string body;
  PutU32(&body, 0x40000000);
  PutU64(&body, 7);
  EXPECT_FALSE(DecodeBatchRequest(body).ok());
}

TEST(FrameCodecTest, FetchResponseRoundTrip) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    DataService::Fetched fetched;
    fetched.value = RandomBytes(rng, 2048);
    fetched.version = rng.Next();
    auto decoded = DecodeFetchResponse(EncodeFetchResponse(fetched));
    ASSERT_TRUE(decoded.ok());
    ASSERT_TRUE(decoded->ok());
    EXPECT_EQ((*decoded)->value, fetched.value);
    EXPECT_EQ((*decoded)->version, fetched.version);
  }
  for (int i = 0; i < 50; ++i) {
    Status err = RandomError(rng);
    auto decoded = DecodeFetchResponse(EncodeFetchResponse(err));
    ASSERT_TRUE(decoded.ok());
    ASSERT_FALSE(decoded->ok());
    EXPECT_EQ(decoded->status(), err);
  }
}

TEST(FrameCodecTest, ExecuteResponseRoundTrip) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    std::string value = RandomBytes(rng, 1024);
    auto decoded =
        DecodeExecuteResponse(EncodeExecuteResponse(StatusOr<std::string>(value)));
    ASSERT_TRUE(decoded.ok());
    ASSERT_TRUE(decoded->ok());
    EXPECT_EQ(**decoded, value);
  }
  for (int i = 0; i < 50; ++i) {
    Status err = RandomError(rng);
    auto decoded = DecodeExecuteResponse(
        EncodeExecuteResponse(StatusOr<std::string>(err)));
    ASSERT_TRUE(decoded.ok());
    ASSERT_FALSE(decoded->ok());
    EXPECT_EQ(decoded->status(), err);
  }
}

TEST(FrameCodecTest, BatchResponseRoundTripMixedResults) {
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<StatusOr<std::string>> results;
    size_t n = rng.NextBounded(33);
    for (size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.3)) {
        results.emplace_back(RandomError(rng));
      } else {
        results.emplace_back(RandomBytes(rng, 256));
      }
    }
    auto decoded = DecodeBatchResponse(EncodeBatchResponse(results));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    ASSERT_EQ(decoded->size(), results.size());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ((*decoded)[i].ok(), results[i].ok());
      if (results[i].ok()) {
        EXPECT_EQ(*(*decoded)[i], *results[i]);
      } else {
        EXPECT_EQ((*decoded)[i].status(), results[i].status());
      }
    }
  }
}

TEST(FrameCodecTest, StatResponseRoundTrip) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    DataService::ItemStat stat;
    stat.size_bytes = rng.Uniform(0, 1e12);
    stat.version = rng.Next();
    auto decoded = DecodeStatResponse(EncodeStatResponse(stat));
    ASSERT_TRUE(decoded.ok());
    ASSERT_TRUE(decoded->ok());
    EXPECT_EQ((*decoded)->size_bytes, stat.size_bytes);
    EXPECT_EQ((*decoded)->version, stat.version);
  }
  Status err = Status::NotFound("missing");
  auto decoded = DecodeStatResponse(EncodeStatResponse(err));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->status(), err);
}

TEST(FrameCodecTest, OwnerResponseRoundTrip) {
  for (NodeId node : {NodeId{0}, NodeId{42}, kInvalidNode}) {
    auto decoded = DecodeOwnerResponse(EncodeOwnerResponse(node));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, node);
  }
}

TEST(FrameCodecTest, TruncationNeverParses) {
  // Chopping any suffix off a valid body must yield a parse error — never
  // a bogus success and never a crash (the fuzz-shaped property).
  Rng rng(8);
  std::vector<std::pair<Key, std::string>> items;
  for (int i = 0; i < 5; ++i) {
    items.emplace_back(rng.Next(), RandomBytes(rng, 64));
  }
  std::string full = EncodeBatchRequest(items);
  for (size_t cut = 0; cut < full.size(); ++cut) {
    EXPECT_FALSE(DecodeBatchRequest(full.substr(0, cut)).ok());
  }

  std::string resp = EncodeFetchResponse(
      StatusOr<DataService::Fetched>(DataService::Fetched{"value", 9}));
  for (size_t cut = 0; cut < resp.size(); ++cut) {
    EXPECT_FALSE(DecodeFetchResponse(resp.substr(0, cut)).ok());
  }
}

TEST(FrameCodecTest, ResponseTypeMapping) {
  EXPECT_EQ(ResponseTypeFor(MsgType::kFetchReq), MsgType::kFetchResp);
  EXPECT_EQ(ResponseTypeFor(MsgType::kExecuteReq), MsgType::kExecuteResp);
  EXPECT_EQ(ResponseTypeFor(MsgType::kBatchReq), MsgType::kBatchResp);
  EXPECT_EQ(ResponseTypeFor(MsgType::kStatReq), MsgType::kStatResp);
  EXPECT_EQ(ResponseTypeFor(MsgType::kOwnerReq), MsgType::kOwnerResp);
  EXPECT_EQ(ResponseTypeFor(MsgType::kFetchResp), static_cast<MsgType>(0));
  EXPECT_EQ(ResponseTypeFor(MsgType::kPutReq), MsgType::kPutResp);
  EXPECT_EQ(ResponseTypeFor(MsgType::kSubscribeReq), MsgType::kSubscribeResp);
  // One-way push: never answered.
  EXPECT_EQ(ResponseTypeFor(MsgType::kNotifyEvt), static_cast<MsgType>(0));
}

// ---- wire v2 -------------------------------------------------------------

TEST(FrameHeaderTest, BothSupportedVersionsParse) {
  for (uint8_t version : {kMinWireVersion, kWireVersion}) {
    std::string buf;
    AppendFrameHeader(&buf, MsgType::kFetchReq, /*seq=*/7, /*body_len=*/8,
                      version);
    auto h = ParseFrameHeader(buf, kDefaultMaxFrameBytes);
    ASSERT_TRUE(h.ok()) << h.status();
    EXPECT_EQ(h->version, version);
  }
}

/// The backward-compatibility property: the five v1 verb bodies are
/// byte-identical under v2 (the codec functions are shared and
/// version-free), and a tagged batch is exactly a 16-byte (client_id,
/// batch_seq) prefix in front of the v1 batch body — so a v1 reader given
/// a v2 response body for any of the five verbs parses it unchanged.
TEST(FrameCodecTest, V1BodiesAreV2CompatibleProperty) {
  Rng rng(0xC0117A7);
  for (int i = 0; i < 64; ++i) {
    std::vector<std::pair<Key, std::string>> items;
    for (int j = 0; j < static_cast<int>(rng.NextBounded(6)); ++j) {
      items.emplace_back(rng.Next(), RandomBytes(rng, 64));
    }
    uint64_t client_id = rng.Next();
    uint64_t batch_seq = rng.Next();
    std::string tagged = EncodeTaggedBatchRequest(client_id, batch_seq, items);
    std::string untagged = EncodeBatchRequest(items);
    ASSERT_EQ(tagged.size(), untagged.size() + 16);
    EXPECT_EQ(tagged.substr(16), untagged)
        << "tagged batch must wrap the v1 body byte-identically";
    auto decoded = DecodeTaggedBatchRequest(tagged);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->client_id, client_id);
    EXPECT_EQ(decoded->batch_seq, batch_seq);
    EXPECT_EQ(decoded->items, items);

    // Any v1-verb body round-trips identically regardless of the header
    // version framing it.
    Key key = rng.Next();
    std::string body = EncodeKeyRequest(key);
    for (uint8_t version : {kMinWireVersion, kWireVersion}) {
      auto frame = BuildFrame(MsgType::kFetchReq, 1, body,
                              kDefaultMaxFrameBytes, version);
      ASSERT_TRUE(frame.ok());
      auto h = ParseFrameHeader(frame->substr(0, kFrameHeaderBytes),
                                kDefaultMaxFrameBytes);
      ASSERT_TRUE(h.ok());
      EXPECT_EQ(h->version, version);
      auto k = DecodeKeyRequest(frame->substr(kFrameHeaderBytes));
      ASSERT_TRUE(k.ok());
      EXPECT_EQ(*k, key);
    }
  }
}

TEST(FrameCodecTest, PutRequestAndResponseRoundTrip) {
  Rng rng(77);
  for (int i = 0; i < 32; ++i) {
    Key key = rng.Next();
    std::string value = RandomBytes(rng, 2048);
    auto req = DecodePutRequest(EncodePutRequest(key, value));
    ASSERT_TRUE(req.ok()) << req.status();
    EXPECT_EQ(req->key, key);
    EXPECT_EQ(req->value, value);
    EXPECT_EQ(req->version_floor, 0u) << "default must be a primary write";

    uint64_t floor = rng.Next() | 1;  // non-zero: a replica write
    auto replica = DecodePutRequest(EncodePutRequest(key, value, floor));
    ASSERT_TRUE(replica.ok()) << replica.status();
    EXPECT_EQ(replica->key, key);
    EXPECT_EQ(replica->value, value);
    EXPECT_EQ(replica->version_floor, floor);

    uint64_t version = rng.Next();
    auto ok_resp = DecodePutResponse(EncodePutResponse(version));
    ASSERT_TRUE(ok_resp.ok()) << ok_resp.status();
    ASSERT_TRUE(ok_resp->ok());
    EXPECT_EQ(ok_resp->value(), version);

    Status err = RandomError(rng);
    auto err_resp = DecodePutResponse(EncodePutResponse(err));
    ASSERT_TRUE(err_resp.ok()) << err_resp.status();
    ASSERT_FALSE(err_resp->ok());
    EXPECT_EQ(err_resp->status().code(), err.code());
  }
}

TEST(FrameCodecTest, SubscribeAndNotifyRoundTrip) {
  Rng rng(78);
  auto sub = DecodeSubscribeRequest(EncodeSubscribeRequest(42));
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(*sub, 42);

  std::vector<RegionEpoch> regions;
  for (int r = 0; r < 12; ++r) {
    regions.push_back(RegionEpoch{r, rng.Next(), rng.Next()});
  }
  auto snapshot = DecodeSubscribeResponse(EncodeSubscribeResponse(regions));
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  ASSERT_EQ(snapshot->size(), regions.size());
  for (size_t i = 0; i < regions.size(); ++i) {
    EXPECT_EQ((*snapshot)[i].region, regions[i].region);
    EXPECT_EQ((*snapshot)[i].epoch, regions[i].epoch);
    EXPECT_EQ((*snapshot)[i].seq, regions[i].seq);
  }

  UpdateEvent event{3, rng.Next(), rng.Next(), rng.Next(), rng.Next()};
  auto decoded = DecodeNotifyEvent(EncodeNotifyEvent(event));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->region, event.region);
  EXPECT_EQ(decoded->epoch, event.epoch);
  EXPECT_EQ(decoded->seq, event.seq);
  EXPECT_EQ(decoded->key, event.key);
  EXPECT_EQ(decoded->version, event.version);
}

TEST(FrameCodecTest, V2TruncationNeverParses) {
  std::string tagged = EncodeTaggedBatchRequest(1, 2, {{3, "params"}});
  for (size_t cut = 0; cut < tagged.size(); ++cut) {
    EXPECT_FALSE(DecodeTaggedBatchRequest(tagged.substr(0, cut)).ok());
  }
  std::string put = EncodePutRequest(9, "value");
  for (size_t cut = 0; cut < put.size(); ++cut) {
    EXPECT_FALSE(DecodePutRequest(put.substr(0, cut)).ok());
  }
  std::string snapshot =
      EncodeSubscribeResponse({RegionEpoch{0, 1, 2}, RegionEpoch{1, 3, 4}});
  for (size_t cut = 0; cut < snapshot.size(); ++cut) {
    EXPECT_FALSE(DecodeSubscribeResponse(snapshot.substr(0, cut)).ok());
  }
  std::string evt = EncodeNotifyEvent(UpdateEvent{1, 2, 3, 4, 5});
  for (size_t cut = 0; cut < evt.size(); ++cut) {
    EXPECT_FALSE(DecodeNotifyEvent(evt.substr(0, cut)).ok());
  }
  // Trailing garbage is rejected too, not silently ignored.
  EXPECT_FALSE(DecodeNotifyEvent(evt + "x").ok());
}

}  // namespace
}  // namespace joinopt
