// Hedged reads over loopback TCP (DESIGN.md §15): a slow primary replica
// is cut off by a duplicate request to a fast sibling, the budget keeps
// hedges bounded, and the adaptive delay converges onto the observed
// latency distribution.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "joinopt/engine/latency_service.h"
#include "joinopt/net/rpc_client.h"
#include "joinopt/net/rpc_server.h"
#include "joinopt/store/log_store.h"

namespace joinopt {
namespace {

UserFn EchoFn() {
  return [](Key key, const std::string& params, const std::string& value) {
    return std::to_string(key) + "/" + params + "/" + value;
  };
}

/// Pads every `every`-th Fetch by `spike_seconds` — the tail-spike shape
/// (mostly fast, occasionally awful) that per-endpoint percentile hedging
/// is built for. Thread-safe.
class SpikyService : public DataService {
 public:
  SpikyService(DataService* inner, int every, double spike_seconds)
      : inner_(inner), every_(every), spike_seconds_(spike_seconds) {}

  StatusOr<Fetched> Fetch(Key key) override {
    if (calls_.fetch_add(1, std::memory_order_relaxed) % every_ ==
        every_ - 1) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(spike_seconds_));
    }
    return inner_->Fetch(key);
  }
  StatusOr<std::string> Execute(Key key, const std::string& params,
                                const UserFn& fn) override {
    return inner_->Execute(key, params, fn);
  }
  std::vector<StatusOr<std::string>> ExecuteBatch(
      const std::vector<std::pair<Key, std::string>>& items,
      const UserFn& fn) override {
    return inner_->ExecuteBatch(items, fn);
  }
  StatusOr<ItemStat> Stat(Key key) const override { return inner_->Stat(key); }
  NodeId OwnerOf(Key key) const override { return inner_->OwnerOf(key); }

 private:
  DataService* inner_;
  const int every_;
  const double spike_seconds_;
  std::atomic<int64_t> calls_{0};
};

/// Two replica servers over one store: endpoints[0] wraps `first`,
/// endpoints[1] wraps `second` — unlike LoopbackRpc, the replicas may
/// present different service behaviour (slow primary, fast sibling).
struct TwoReplicaFixture {
  TwoReplicaFixture(DataService* first, DataService* second,
                    RpcClientOptions copts) {
    servers.push_back(std::make_unique<RpcServer>(first, EchoFn()));
    servers.push_back(std::make_unique<RpcServer>(second, EchoFn()));
    for (auto& s : servers) {
      status = s->Start();
      if (!status.ok()) return;
      copts.endpoints.push_back(RpcEndpoint{s->host(), s->port()});
    }
    client = std::make_unique<RpcClientService>(std::move(copts));
  }

  Status status;
  std::vector<std::unique_ptr<RpcServer>> servers;
  std::unique_ptr<RpcClientService> client;
};

TEST(HedgedReadTest, HedgeCutsOffSlowPrimary) {
  LogStructuredStore store{LogStoreConfig{}};
  for (Key k = 0; k < 16; ++k) store.Put(k, "v" + std::to_string(k));
  LogStoreDataService fast(&store, /*num_shards=*/4);
  ServiceLatencyModel slow_model;
  slow_model.fetch_rtt = 300e-3;  // the straggling primary
  LatencyPaddedService slow(&fast, slow_model);

  RpcClientOptions copts;
  copts.balance_reads = false;  // pin the primary to the slow replica
  copts.recovery.hedging = true;
  copts.recovery.adaptive_hedging = false;  // static 20 ms hedge delay
  copts.recovery.hedge_delay = 20e-3;
  copts.recovery.hedge_budget = 1.0;  // every read may hedge
  copts.recovery.hedge_burst = 64.0;
  TwoReplicaFixture fx(&slow, &fast, copts);
  ASSERT_TRUE(fx.status.ok()) << fx.status;

  constexpr int kReads = 10;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kReads; ++i) {
    auto fetched = fx.client->Fetch(static_cast<Key>(i % 16));
    ASSERT_TRUE(fetched.ok()) << fetched.status();
    EXPECT_EQ(fetched->value, "v" + std::to_string(i % 16));
  }
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();

  RecoveryCounters rec = fx.client->recovery_counters();
  EXPECT_EQ(rec.hedges_sent, kReads);  // every read outlived 20 ms
  EXPECT_EQ(rec.hedges_won, kReads);   // and the fast sibling always won
  // Without hedging these reads cost >= kReads * 300 ms; with it, ~20 ms
  // each. Allow generous CI slack.
  EXPECT_LT(elapsed, kReads * 150e-3);
}

TEST(HedgedReadTest, ZeroBudgetNeverHedges) {
  LogStructuredStore store{LogStoreConfig{}};
  store.Put(1, "one");
  LogStoreDataService fast(&store, /*num_shards=*/4);
  ServiceLatencyModel slow_model;
  slow_model.fetch_rtt = 50e-3;
  LatencyPaddedService slow(&fast, slow_model);

  RpcClientOptions copts;
  copts.balance_reads = false;
  copts.recovery.hedging = true;
  copts.recovery.adaptive_hedging = false;
  copts.recovery.hedge_delay = 5e-3;
  copts.recovery.hedge_budget = 0.0;  // the bucket never accrues
  TwoReplicaFixture fx(&slow, &fast, copts);
  ASSERT_TRUE(fx.status.ok()) << fx.status;

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(fx.client->Fetch(1).ok());
  }
  EXPECT_EQ(fx.client->recovery_counters().hedges_sent, 0);
  EXPECT_EQ(fx.servers[1]->stats().requests, 0)
      << "the sibling saw traffic despite a zero hedge budget";
}

TEST(HedgedReadTest, AdaptiveDelayConvergesAndBudgetHolds) {
  LogStructuredStore store{LogStoreConfig{}};
  for (Key k = 0; k < 16; ++k) store.Put(k, "v" + std::to_string(k));
  LogStoreDataService fast(&store, /*num_shards=*/4);
  // Primary: fast except every 8th fetch stalls 150 ms — the spiky-tail
  // shape where a per-endpoint percentile beats any static delay. The
  // 12.5% spike mass sits above the p80 watermark, so the learned delay
  // stays in the fast mode.
  SpikyService spiky(&fast, /*every=*/8, /*spike_seconds=*/150e-3);

  HedgingConfig hc;
  hc.percentile = 0.8;
  hc.budget = 0.3;
  hc.burst = 4.0;
  hc.warmup = 8;
  hc.window = 64;
  hc.refresh_every = 4;
  hc.fallback_delay = 1.0;  // pre-warmup: effectively never hedge
  auto manager = std::make_shared<HedgingManager>(hc);

  RpcClientOptions copts;
  copts.balance_reads = false;
  copts.hedging = manager;  // shared-manager path
  TwoReplicaFixture fx(&spiky, &fast, copts);
  ASSERT_TRUE(fx.status.ok()) << fx.status;

  constexpr int kReads = 60;
  for (int i = 0; i < kReads; ++i) {
    ASSERT_TRUE(fx.client->Fetch(static_cast<Key>(i % 16)).ok());
  }

  // The adaptive delay converged onto the fast mode's p80, far under the
  // 150 ms spikes...
  EXPECT_LT(manager->HedgeDelay(0), 100e-3);
  // ...so spiked reads were hedged and won by the fast sibling.
  RecoveryCounters rec = fx.client->recovery_counters();
  EXPECT_GT(rec.hedges_won, 0);
  // The hard budget invariant holds at the end of the run too.
  HedgingStats hs = manager->stats();
  EXPECT_LE(static_cast<double>(hs.hedges_granted),
            hc.budget * static_cast<double>(hs.primaries) + 1e-9);
}

}  // namespace
}  // namespace joinopt
