// Socket transport tests over loopback TCP: verb parity with the wrapped
// in-process service, one-round-trip batching, connect/IO deadlines
// surfacing as the recovery machinery's Status codes, replica failover when
// a server dies (including mid-batch), and the ParallelInvoker running
// unmodified over the networked DataService.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "joinopt/engine/async_api.h"
#include "joinopt/engine/parallel_invoker.h"
#include "joinopt/engine/plan_exec.h"
#include "joinopt/net/loopback.h"
#include "joinopt/store/log_store.h"

namespace joinopt {
namespace {

UserFn EchoFn() {
  return [](Key key, const std::string& params, const std::string& value) {
    return std::to_string(key) + "/" + params + "/" + value;
  };
}

/// A store + service fixture with deterministic contents.
struct StoreFixture {
  StoreFixture() : store(LogStoreConfig{}), service(&store, /*num_shards=*/4) {
    for (Key k = 0; k < 64; ++k) {
      store.Put(k, "payload-" + std::to_string(k));
    }
  }
  LogStructuredStore store;
  LogStoreDataService service;
};

TEST(RpcTransportTest, AllFiveVerbsMatchInProcessService) {
  StoreFixture fx;
  LoopbackRpc rpc(&fx.service, EchoFn());
  ASSERT_TRUE(rpc.status().ok()) << rpc.status();
  RpcClientService& remote = rpc.client();

  for (Key k = 0; k < 16; ++k) {
    auto fetched = remote.Fetch(k);
    ASSERT_TRUE(fetched.ok()) << fetched.status();
    EXPECT_EQ(fetched->value, "payload-" + std::to_string(k));
    EXPECT_EQ(fetched->version, fx.store.VersionOf(k));

    auto executed = remote.Execute(k, "p", EchoFn());
    ASSERT_TRUE(executed.ok()) << executed.status();
    EXPECT_EQ(*executed, *fx.service.Execute(k, "p", EchoFn()));

    auto stat = remote.Stat(k);
    ASSERT_TRUE(stat.ok()) << stat.status();
    EXPECT_EQ(stat->size_bytes, fx.service.Stat(k)->size_bytes);
    EXPECT_EQ(stat->version, fx.service.Stat(k)->version);

    EXPECT_EQ(remote.OwnerOf(k), fx.service.OwnerOf(k));
  }

  auto missing = remote.Fetch(9999);
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound())
      << "application errors must travel in-band: " << missing.status();
  // An in-band application error is not a transport failure: no retries,
  // no failovers, no abandoned calls.
  EXPECT_EQ(remote.recovery_counters().retries, 0);
  EXPECT_EQ(remote.recovery_counters().tuples_failed, 0);
}

TEST(RpcTransportTest, ExecuteBatchIsOneRoundTripAndIndexAligned) {
  StoreFixture fx;
  LoopbackRpc rpc(&fx.service, EchoFn());
  ASSERT_TRUE(rpc.status().ok()) << rpc.status();

  std::vector<std::pair<Key, std::string>> items;
  for (Key k = 0; k < 32; ++k) {
    items.emplace_back(k, "b" + std::to_string(k));
  }
  items.emplace_back(4242, "missing");  // error result mid-batch

  auto results = rpc.client().ExecuteBatch(items, EchoFn());
  ASSERT_EQ(results.size(), items.size());
  for (size_t i = 0; i + 1 < items.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status();
    EXPECT_EQ(*results[i],
              *fx.service.Execute(items[i].first, items[i].second, EchoFn()));
  }
  EXPECT_TRUE(results.back().status().IsNotFound());

  // The whole batch travelled as ONE request (one client call, one server
  // request carrying 33 items) — the round-trip amortization the
  // delegation batcher relies on.
  EXPECT_EQ(rpc.client().stats().calls, 1);
  RpcServerStats server_stats = rpc.server().stats();
  EXPECT_EQ(server_stats.requests, 1);
  EXPECT_EQ(server_stats.batch_items, 33);

  EXPECT_TRUE(rpc.client().ExecuteBatch({}, EchoFn()).empty());
}

TEST(RpcTransportTest, BatchIsCheaperThanSingletonExecutes) {
  StoreFixture fx;
  LoopbackRpc rpc(&fx.service, EchoFn());
  ASSERT_TRUE(rpc.status().ok()) << rpc.status();
  RpcClientService& remote = rpc.client();

  constexpr int kItems = 64;
  std::vector<std::pair<Key, std::string>> items;
  for (int i = 0; i < kItems; ++i) {
    items.emplace_back(static_cast<Key>(i % 64), "p");
  }

  // Warm the connection pool so neither side pays the dial.
  ASSERT_TRUE(remote.Execute(0, "warm", EchoFn()).ok());

  // min-of-3 to shrug off scheduler noise under sanitizers.
  double singleton_best = 1e9, batch_best = 1e9;
  for (int rep = 0; rep < 3; ++rep) {
    double t0 = PlanNowSeconds();
    for (const auto& [key, params] : items) {
      ASSERT_TRUE(remote.Execute(key, params, EchoFn()).ok());
    }
    singleton_best = std::min(singleton_best, PlanNowSeconds() - t0);

    t0 = PlanNowSeconds();
    auto results = remote.ExecuteBatch(items, EchoFn());
    batch_best = std::min(batch_best, PlanNowSeconds() - t0);
    for (const auto& r : results) ASSERT_TRUE(r.ok());
  }

  // 64 round trips vs 1: batching must win by a wide margin; asserting 2x
  // keeps the test robust on loaded CI machines.
  EXPECT_LT(batch_best * 2, singleton_best)
      << "batch=" << batch_best << "s singleton=" << singleton_best << "s";
}

TEST(RpcTransportTest, ConcurrentClientsShareThePool) {
  StoreFixture fx;
  LoopbackRpc rpc(&fx.service, EchoFn());
  ASSERT_TRUE(rpc.status().ok()) << rpc.status();
  RpcClientService& remote = rpc.client();

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&remote, &failures, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        Key k = static_cast<Key>((t * kOpsPerThread + i) % 64);
        auto fetched = remote.Fetch(k);
        if (!fetched.ok() ||
            fetched->value != "payload-" + std::to_string(k)) {
          ++failures;
        }
        auto executed = remote.Execute(k, "c", EchoFn());
        if (!executed.ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(remote.recovery_counters().tuples_failed, 0);
}

TEST(RpcTransportTest, ConnectionRefusedSurfacesAsTransportError) {
  // Dial a port nothing listens on: every attempt fails fast with the
  // retriable transport class, and the call is counted as abandoned.
  RpcClientOptions opts;
  opts.endpoints = {{"127.0.0.1", 1}};  // reserved port, never bound
  opts.recovery.max_attempts = 2;
  opts.recovery.backoff_base = 1e-3;
  opts.recovery.backoff_max = 2e-3;
  RpcClientService remote(opts);

  auto fetched = remote.Fetch(1);
  ASSERT_FALSE(fetched.ok());
  EXPECT_TRUE(IsTransportError(fetched.status())) << fetched.status();

  RecoveryCounters rec = remote.recovery_counters();
  EXPECT_EQ(rec.retries, 1);        // attempt 2 of 2
  EXPECT_EQ(rec.tuples_failed, 1);  // abandoned after max_attempts
  EXPECT_EQ(remote.OwnerOf(1), kInvalidNode);
}

TEST(RpcTransportTest, IoDeadlineSurfacesAsTimeout) {
  // A listener that accepts but never answers: the IO deadline must fire
  // and be classified as a timeout (RecoveryCounters::timeouts), the
  // signal the backoff + failover loop keys on.
  auto listener = TcpListen("127.0.0.1", 0, 4);
  ASSERT_TRUE(listener.ok()) << listener.status();
  auto port = BoundPort(listener->get());
  ASSERT_TRUE(port.ok());
  std::atomic<bool> stop{false};
  std::thread black_hole([&listener, &stop] {
    std::vector<UniqueFd> conns;  // accept, hold open, never reply
    while (!stop.load()) {
      auto readable = WaitReadable(listener->get(), 0.02);
      if (readable.ok() && *readable) {
        int fd = ::accept(listener->get(), nullptr, nullptr);
        if (fd >= 0) conns.emplace_back(fd);
      }
    }
  });

  RpcClientOptions opts;
  opts.endpoints = {{"127.0.0.1", *port}};
  opts.recovery.request_timeout = 0.05;
  opts.recovery.max_attempts = 2;
  opts.recovery.backoff_base = 1e-3;
  opts.recovery.backoff_max = 2e-3;
  RpcClientService remote(opts);

  auto fetched = remote.Fetch(1);
  ASSERT_FALSE(fetched.ok());
  EXPECT_TRUE(IsDeadlineExceeded(fetched.status())) << fetched.status();

  RecoveryCounters rec = remote.recovery_counters();
  EXPECT_EQ(rec.timeouts, 2);  // both attempts expired
  EXPECT_EQ(rec.tuples_failed, 1);

  stop.store(true);
  black_hole.join();
}

TEST(RpcTransportTest, KillServerMidBatchFailsOverToReplica) {
  StoreFixture fx;
  // A UDF slow enough (1 ms/item) that a 100-item batch gives a wide
  // window to kill the primary while the batch executes server-side.
  UserFn slow_fn = [](Key key, const std::string& params,
                      const std::string& value) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return std::to_string(key) + "/" + params + "/" + value;
  };
  RpcClientOptions copts;
  copts.recovery.request_timeout = 5.0;
  copts.recovery.backoff_base = 1e-3;
  copts.recovery.backoff_max = 5e-3;
  copts.recovery.max_attempts = 4;
  LoopbackRpc rpc(&fx.service, slow_fn, /*num_replicas=*/2, copts);
  ASSERT_TRUE(rpc.status().ok()) << rpc.status();

  std::vector<std::pair<Key, std::string>> items;
  for (int i = 0; i < 100; ++i) {
    items.emplace_back(static_cast<Key>(i % 64), "p");
  }

  std::vector<StatusOr<std::string>> results;
  std::thread batcher([&rpc, &items, &results] {
    results = rpc.client().ExecuteBatch(items, UserFn());
  });
  // Let the batch reach the primary, then kill it mid-execution. Stop()
  // severs the connection, so the in-flight attempt dies with a transport
  // error and the client fails over to the replica.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  rpc.StopServer(0);
  batcher.join();

  ASSERT_EQ(results.size(), items.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok())
        << "item " << i << ": " << results[i].status();
    EXPECT_EQ(*results[i], *fx.service.Execute(items[i].first,
                                               items[i].second, slow_fn));
  }
  RecoveryCounters rec = rpc.client().recovery_counters();
  EXPECT_GE(rec.retries, 1);
  EXPECT_GE(rec.failovers, 1);  // a non-primary endpoint served the batch
  EXPECT_EQ(rec.tuples_failed, 0);

  // The dead primary stays dead: later singleton calls keep failing over
  // (attempt 1 → primary refused, attempt 2 → replica answers).
  auto after = rpc.client().Execute(3, "after", UserFn());
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_GT(rpc.client().recovery_counters().failovers, rec.failovers);
}

TEST(RpcTransportTest, V1ClientSpeaksAllFiveVerbsToV2Server) {
  // A frozen v1 client (frames stamped version=1, pre-Put/Subscribe body
  // formats) against today's server: every one of the five original verbs
  // must round-trip, and the server must answer in the client's version.
  StoreFixture fx;
  LoopbackRpc rpc(&fx.service, EchoFn());
  ASSERT_TRUE(rpc.status().ok()) << rpc.status();

  auto conn = TcpConnect(rpc.server().host(), rpc.server().port(), 1.0);
  ASSERT_TRUE(conn.ok()) << conn.status();
  uint32_t seq = 0;
  auto exchange = [&](MsgType type,
                      const std::string& body) -> StatusOr<std::string> {
    JOINOPT_RETURN_NOT_OK(SendFrame(conn->get(), type, ++seq, body, 1.0,
                                    kDefaultMaxFrameBytes,
                                    /*version=*/kMinWireVersion));
    JOINOPT_ASSIGN_OR_RETURN(RecvdFrame frame,
                             RecvFrame(conn->get(), 2.0,
                                       kDefaultMaxFrameBytes));
    EXPECT_EQ(frame.header.version, kMinWireVersion)
        << "server must answer a v1 client in v1";
    EXPECT_EQ(frame.header.type, ResponseTypeFor(type));
    EXPECT_EQ(frame.header.seq, seq);
    return std::move(frame.body);
  };

  Key key = 7;
  auto fetch_body = exchange(MsgType::kFetchReq, EncodeKeyRequest(key));
  ASSERT_TRUE(fetch_body.ok()) << fetch_body.status();
  auto fetched = DecodeFetchResponse(*fetch_body);
  ASSERT_TRUE(fetched.ok() && fetched->ok()) << fetched.status();
  EXPECT_EQ(fetched->value().value, "payload-7");

  auto exec_body =
      exchange(MsgType::kExecuteReq, EncodeExecuteRequest(key, "p"));
  ASSERT_TRUE(exec_body.ok()) << exec_body.status();
  auto executed = DecodeExecuteResponse(*exec_body);
  ASSERT_TRUE(executed.ok() && executed->ok()) << executed.status();
  EXPECT_EQ(executed->value(), "7/p/payload-7");

  auto batch_body = exchange(
      MsgType::kBatchReq, EncodeBatchRequest({{1, "a"}, {2, "b"}}));
  ASSERT_TRUE(batch_body.ok()) << batch_body.status();
  auto batch = DecodeBatchResponse(*batch_body);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->size(), 2u);
  EXPECT_EQ((*batch)[0].value(), "1/a/payload-1");
  EXPECT_EQ((*batch)[1].value(), "2/b/payload-2");

  auto stat_body = exchange(MsgType::kStatReq, EncodeKeyRequest(key));
  ASSERT_TRUE(stat_body.ok()) << stat_body.status();
  auto stat = DecodeStatResponse(*stat_body);
  ASSERT_TRUE(stat.ok() && stat->ok()) << stat.status();
  EXPECT_EQ(stat->value().version, fx.store.VersionOf(key));

  auto owner_body = exchange(MsgType::kOwnerReq, EncodeKeyRequest(key));
  ASSERT_TRUE(owner_body.ok()) << owner_body.status();
  auto owner = DecodeOwnerResponse(*owner_body);
  ASSERT_TRUE(owner.ok()) << owner.status();
  EXPECT_EQ(*owner, fx.service.OwnerOf(key));
}

TEST(RpcTransportTest, ReadBalancingSpreadsFetchesButWritesStayPrimary) {
  StoreFixture fx;
  RpcClientOptions copts;
  copts.balance_reads = true;
  constexpr int kReplicas = 3;
  LoopbackRpc rpc(&fx.service, EchoFn(), kReplicas, copts);
  ASSERT_TRUE(rpc.status().ok()) << rpc.status();

  constexpr int kReads = 120;
  for (int i = 0; i < kReads; ++i) {
    auto fetched = rpc.client().Fetch(static_cast<Key>(i % 64));
    ASSERT_TRUE(fetched.ok()) << fetched.status();
  }
  // Sequential reads leave zero outstanding everywhere, so the round-robin
  // tie-break must spread them evenly: each replica gets its fair share.
  int64_t read_counts[kReplicas];
  for (int r = 0; r < kReplicas; ++r) {
    read_counts[r] = rpc.server(r).stats().requests;
    EXPECT_GE(read_counts[r], kReads / kReplicas / 2)
        << "replica " << r << " starved under read balancing";
  }

  // Executes (potential writes / UDF side effects) must keep hitting the
  // primary only — balancing applies to reads alone.
  constexpr int kWrites = 30;
  for (int i = 0; i < kWrites; ++i) {
    ASSERT_TRUE(rpc.client().Execute(static_cast<Key>(i), "w", EchoFn()).ok());
  }
  EXPECT_EQ(rpc.server(0).stats().requests, read_counts[0] + kWrites);
  for (int r = 1; r < kReplicas; ++r) {
    EXPECT_EQ(rpc.server(r).stats().requests, read_counts[r])
        << "execute leaked to replica " << r;
  }
}

TEST(RpcTransportTest, RecoveryCountersStayExactUnderConcurrentFailover) {
  // Satellite: many ParallelInvoker workers fail over concurrently from a
  // dead primary. Every call takes exactly two attempts (primary refused,
  // replica answers), so the counters have exact expected values — any
  // lost or double increment under concurrency shows up as an inequality.
  StoreFixture fx;
  RpcClientOptions copts;
  copts.balance_reads = false;  // every call starts at the dead primary
  copts.recovery.max_attempts = 2;
  copts.recovery.backoff_base = 1e-3;
  copts.recovery.backoff_max = 2e-3;
  LoopbackRpc rpc(&fx.service, EchoFn(), /*num_replicas=*/2, copts);
  ASSERT_TRUE(rpc.status().ok()) << rpc.status();
  rpc.StopServer(0);

  ParallelInvokerOptions opts;
  opts.num_threads = 8;
  ParallelInvoker invoker(&rpc.client(), EchoFn(), opts);
  constexpr int kItems = 200;
  for (int i = 0; i < kItems; ++i) {
    invoker.SubmitComp(static_cast<Key>(i % 64), "f" + std::to_string(i));
  }
  for (int i = 0; i < kItems; ++i) {
    Key k = static_cast<Key>(i % 64);
    auto r = invoker.FetchComp(k, "f" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(*r, *fx.service.Execute(k, "f" + std::to_string(i), EchoFn()));
  }
  invoker.Barrier();

  RecoveryCounters rec = rpc.client().recovery_counters();
  int64_t calls = rpc.client().stats().calls;
  EXPECT_GT(calls, 0);
  // Exactness: one failover retry per call, nothing abandoned, and the
  // refused connect is not misclassified as a timeout.
  EXPECT_EQ(rec.retries, calls);
  EXPECT_EQ(rec.failovers, calls);
  EXPECT_EQ(rec.tuples_failed, 0);
  EXPECT_EQ(rec.timeouts, 0);
  EXPECT_EQ(invoker.stats().transport_errors, 0);
}

TEST(RpcTransportTest, ParallelInvokerRunsUnmodifiedOverSockets) {
  StoreFixture fx;
  LoopbackRpc rpc(&fx.service, EchoFn());
  ASSERT_TRUE(rpc.status().ok()) << rpc.status();

  ParallelInvokerOptions opts;
  opts.num_threads = 4;
  ParallelInvoker invoker(&rpc.client(), EchoFn(), opts);
  for (int round = 0; round < 4; ++round) {
    for (Key k = 0; k < 64; ++k) invoker.SubmitComp(k, "s");
    for (Key k = 0; k < 64; ++k) {
      auto r = invoker.FetchComp(k, "s");
      ASSERT_TRUE(r.ok()) << r.status();
      EXPECT_EQ(*r, *fx.service.Execute(k, "s", EchoFn()));
    }
  }
  invoker.Barrier();
  ParallelInvokerStats stats = invoker.stats();
  EXPECT_EQ(stats.submitted, 256);
  EXPECT_EQ(stats.transport_errors, 0);
  EXPECT_EQ(rpc.client().recovery_counters().tuples_failed, 0);
}

}  // namespace
}  // namespace joinopt
