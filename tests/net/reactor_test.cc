// Reactor-backend tests: verb parity with the thread-per-connection
// backend, request pipelining with out-of-order completion (responses
// correlate by frame seq), flat thread count under a thousand idle
// connections, read-side backpressure when a client floods past the
// pipeline bound, Notify flow control — a slow subscriber is throttled
// with per-key coalescing instead of dropped — and the subscriber-side
// half: a live-stream seq gap counts as coalesced_gaps, not a re-sync.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "joinopt/cluster/data_node.h"
#include "joinopt/cluster/subscriber.h"
#include "joinopt/cluster/topology.h"
#include "joinopt/net/loopback.h"
#include "joinopt/net/socket.h"
#include "joinopt/store/log_store.h"

namespace joinopt {
namespace {

UserFn EchoFn() {
  return [](Key key, const std::string& params, const std::string& value) {
    return std::to_string(key) + "/" + params + "/" + value;
  };
}

bool WaitFor(const std::function<bool()>& pred, double timeout_sec) {
  auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_sec));
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

struct StoreFixture {
  StoreFixture() : store(LogStoreConfig{}), service(&store, /*num_shards=*/4) {
    for (Key k = 0; k < 64; ++k) {
      store.Put(k, "payload-" + std::to_string(k));
    }
  }
  LogStructuredStore store;
  LogStoreDataService service;
};

RpcServerOptions ReactorOptions() {
  RpcServerOptions opts;
  opts.backend = RpcBackend::kReactor;
  return opts;
}

/// Connects with SO_RCVBUF shrunk BEFORE the handshake, so the TCP window
/// scale is negotiated tiny and the kernel cannot swallow a large response
/// on the receiver's behalf — the lever the slow-subscriber test uses to
/// pin the server's write queue above its watermark.
StatusOr<UniqueFd> ConnectWithTinyWindow(const std::string& host,
                                         uint16_t port) {
  int raw = ::socket(AF_INET, SOCK_STREAM, 0);
  if (raw < 0) return ErrnoToStatus(errno, "socket");
  UniqueFd fd(raw);
  int rcvbuf = 2048;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                   sizeof(rcvbuf)) != 0) {
    return ErrnoToStatus(errno, "setsockopt(SO_RCVBUF)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host: " + host);
  }
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return ErrnoToStatus(errno, "connect");
  }
  return fd;
}

TEST(ReactorTest, BothBackendsServeIdenticalVerbs) {
  // The same client workload against both backends: results must agree
  // verb by verb (one VerbDispatcher, so drift would be a serving bug).
  for (RpcBackend backend :
       {RpcBackend::kThreadPerConnection, RpcBackend::kReactor}) {
    SCOPED_TRACE(backend == RpcBackend::kReactor ? "reactor" : "threaded");
    StoreFixture fx;
    RpcServerOptions sopts;
    sopts.backend = backend;
    LoopbackRpc rpc(&fx.service, EchoFn(), /*num_replicas=*/1, {}, sopts);
    ASSERT_TRUE(rpc.status().ok()) << rpc.status();
    EXPECT_EQ(rpc.server().active_backend(), backend);

    RpcClientService& remote = rpc.client();
    for (Key k = 0; k < 16; ++k) {
      auto fetched = remote.Fetch(k);
      ASSERT_TRUE(fetched.ok()) << fetched.status();
      EXPECT_EQ(fetched->value, "payload-" + std::to_string(k));

      auto executed = remote.Execute(k, "p", EchoFn());
      ASSERT_TRUE(executed.ok()) << executed.status();
      EXPECT_EQ(*executed, *fx.service.Execute(k, "p", EchoFn()));

      auto stat = remote.Stat(k);
      ASSERT_TRUE(stat.ok()) << stat.status();
      EXPECT_EQ(stat->version, fx.service.Stat(k)->version);
      EXPECT_EQ(remote.OwnerOf(k), fx.service.OwnerOf(k));
    }

    std::vector<std::pair<Key, std::string>> items;
    for (Key k = 0; k < 32; ++k) items.emplace_back(k, "b");
    auto results = remote.ExecuteBatch(items, EchoFn());
    ASSERT_EQ(results.size(), items.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << results[i].status();
      EXPECT_EQ(*results[i],
                *fx.service.Execute(items[i].first, items[i].second,
                                    EchoFn()));
    }

    auto missing = remote.Fetch(9999);
    ASSERT_FALSE(missing.ok());
    EXPECT_TRUE(missing.status().IsNotFound()) << missing.status();
    EXPECT_EQ(remote.recovery_counters().retries, 0);
  }
}

TEST(ReactorTest, PipelinedResponsesCompleteOutOfOrder) {
  // Two requests down one connection without waiting: a slow Execute
  // (seq 1) and a cheap Stat (seq 2). With two workers the Stat finishes
  // first, and the reactor may answer out of order — the client matches
  // responses to requests by frame seq, not arrival order.
  StoreFixture fx;
  UserFn fn = [](Key key, const std::string& params,
                 const std::string& value) {
    if (params == "slow") {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    return std::to_string(key) + "/" + params + "/" + value;
  };
  RpcServer server(&fx.service, fn, ReactorOptions());
  ASSERT_TRUE(server.Start().ok());

  auto conn = TcpConnect(server.host(), server.port(), 1.0);
  ASSERT_TRUE(conn.ok()) << conn.status();
  ASSERT_TRUE(SendFrame(conn->get(), MsgType::kExecuteReq, 1,
                        EncodeExecuteRequest(7, "slow"), 1.0,
                        kDefaultMaxFrameBytes)
                  .ok());
  ASSERT_TRUE(SendFrame(conn->get(), MsgType::kStatReq, 2,
                        EncodeKeyRequest(7), 1.0, kDefaultMaxFrameBytes)
                  .ok());

  auto first = RecvFrame(conn->get(), 2.0, kDefaultMaxFrameBytes);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->header.seq, 2u) << "cheap Stat should overtake the "
                                      "sleeping Execute";
  EXPECT_EQ(first->header.type, MsgType::kStatResp);

  auto second = RecvFrame(conn->get(), 2.0, kDefaultMaxFrameBytes);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->header.seq, 1u);
  EXPECT_EQ(second->header.type, MsgType::kExecuteResp);
  auto executed = DecodeExecuteResponse(second->body);
  ASSERT_TRUE(executed.ok() && executed->ok()) << executed.status();
  EXPECT_EQ(executed->value(), "7/slow/payload-7");
}

TEST(ReactorTest, ThousandIdleConnectionsKeepThreadCountFlat) {
  // The reactor's headline property: serving threads are a function of
  // configuration, not connection count. A thousand idle clients must not
  // grow the thread gauge, and live traffic must still round-trip.
  StoreFixture fx;
  RpcServerOptions sopts = ReactorOptions();
  sopts.accept_backlog = 512;
  RpcServer server(&fx.service, EchoFn(), sopts);
  ASSERT_TRUE(server.Start().ok());
  const int64_t baseline_threads = server.stats().server_threads;
  ASSERT_GT(baseline_threads, 0);
  // IO threads + workers only — nothing per-connection.
  EXPECT_LE(baseline_threads,
            sopts.reactor_io_threads + sopts.reactor_worker_threads);

  constexpr int kConns = 1000;
  std::vector<UniqueFd> idle;
  idle.reserve(kConns);
  for (int i = 0; i < kConns; ++i) {
    auto conn = TcpConnect(server.host(), server.port(), 5.0);
    ASSERT_TRUE(conn.ok()) << "connection " << i << ": " << conn.status();
    idle.push_back(std::move(conn).value());
  }
  ASSERT_TRUE(WaitFor(
      [&] { return server.stats().live_connections >= kConns; }, 10.0))
      << "accepted " << server.stats().live_connections << " of " << kConns;

  EXPECT_EQ(server.stats().server_threads, baseline_threads)
      << "thread count must stay flat as connections scale";

  // The server still serves under the idle load.
  RpcClientOptions copts;
  copts.endpoints = {{server.host(), server.port()}};
  RpcClientService remote(copts);
  auto fetched = remote.Fetch(3);
  ASSERT_TRUE(fetched.ok()) << fetched.status();
  EXPECT_EQ(fetched->value, "payload-3");

  idle.clear();
  ASSERT_TRUE(WaitFor(
      [&] { return server.stats().live_connections <= 2; }, 10.0));
  server.Stop();
  EXPECT_EQ(server.stats().server_threads, 0);
}

TEST(ReactorTest, StopAndRestartServesAgain) {
  // ClusterDataNode::Restart reuses the RpcServer object: each Start must
  // build a fresh reactor core (a stopped one is not restartable).
  StoreFixture fx;
  RpcServer server(&fx.service, EchoFn(), ReactorOptions());
  ASSERT_TRUE(server.Start().ok());
  uint16_t port = server.port();
  server.Stop();
  ASSERT_TRUE(server.Start().ok());

  RpcClientOptions copts;
  copts.endpoints = {{server.host(), server.port()}};
  RpcClientService remote(copts);
  auto fetched = remote.Fetch(5);
  ASSERT_TRUE(fetched.ok()) << fetched.status();
  EXPECT_EQ(fetched->value, "payload-5");
  (void)port;  // ephemeral: the second bind may pick a different port
}

TEST(ReactorTest, FloodPastPipelineBoundPausesReadsThenServesAll) {
  // Eight requests in one burst against a pipeline bound of two: the
  // reactor must pause reading (flow control, counted) rather than buffer
  // unboundedly, then serve every request exactly once as slots free up.
  StoreFixture fx;
  UserFn fn = [](Key key, const std::string& params,
                 const std::string& value) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return std::to_string(key) + "/" + params + "/" + value;
  };
  RpcServerOptions sopts = ReactorOptions();
  sopts.reactor_max_pipelined_requests = 2;
  RpcServer server(&fx.service, fn, sopts);
  ASSERT_TRUE(server.Start().ok());

  auto conn = TcpConnect(server.host(), server.port(), 1.0);
  ASSERT_TRUE(conn.ok()) << conn.status();
  constexpr uint32_t kRequests = 8;
  for (uint32_t seq = 1; seq <= kRequests; ++seq) {
    ASSERT_TRUE(SendFrame(conn->get(), MsgType::kExecuteReq, seq,
                          EncodeExecuteRequest(seq, "p"), 1.0,
                          kDefaultMaxFrameBytes)
                    .ok());
  }

  std::set<uint32_t> seqs;
  for (uint32_t i = 0; i < kRequests; ++i) {
    auto frame = RecvFrame(conn->get(), 5.0, kDefaultMaxFrameBytes);
    ASSERT_TRUE(frame.ok()) << frame.status();
    ASSERT_EQ(frame->header.type, MsgType::kExecuteResp);
    EXPECT_TRUE(seqs.insert(frame->header.seq).second)
        << "duplicate response for seq " << frame->header.seq;
    auto executed = DecodeExecuteResponse(frame->body);
    ASSERT_TRUE(executed.ok() && executed->ok()) << executed.status();
    EXPECT_EQ(executed->value(),
              *fx.service.Execute(frame->header.seq, "p", fn));
  }
  EXPECT_EQ(seqs.size(), kRequests);
  EXPECT_EQ(*seqs.begin(), 1u);
  EXPECT_EQ(*seqs.rbegin(), kRequests);
  EXPECT_GE(server.stats().backpressure_pauses, 1)
      << "a burst 4x the pipeline bound must trip flow control";
}

TEST(ReactorTest, SlowSubscriberIsCoalescedNotDropped) {
  // The Notify flow-control path end to end. A subscriber stops reading
  // behind a large unread response; repeated updates to one key must
  // coalesce in the bounded pending queue (newest version wins) instead
  // of overflowing it, and the stream must survive — the legacy backend
  // would have dropped the connection for a full re-sync.
  ClusterTopologyConfig tcfg;
  tcfg.num_data_nodes = 1;
  tcfg.regions_per_node = 4;
  tcfg.replication_factor = 1;
  ClusterTopology topology(tcfg);
  ClusterNodeService service(/*node=*/0, &topology);

  RpcServerOptions sopts = ReactorOptions();
  // Tiny write watermarks so one large unread response blocks Notify
  // staging (the coalescing window) without needing megabytes in flight.
  sopts.reactor_write_high_watermark = 64u << 10;
  sopts.reactor_write_low_watermark = 16u << 10;
  RpcServer server(&service, EchoFn(), sopts);
  ASSERT_TRUE(server.Start().ok());

  // Keep the kernel's window small so the socket cannot swallow the big
  // response: the server's write queue must stay above the high
  // watermark while the client plays dead.
  // Sized past the kernel's absorption ceiling (tcp_wmem autotunes the
  // server's send buffer to ~4 MB): most of the response must stay parked
  // in the reactor's write queue, not in socket buffers.
  const Key big_key = 100, hot_key = 7, side_key = 9;
  ASSERT_TRUE(service.Put(big_key, std::string(8u << 20, 'x')).ok());
  auto conn = ConnectWithTinyWindow(server.host(), server.port());
  ASSERT_TRUE(conn.ok()) << conn.status();

  ASSERT_TRUE(SendFrame(conn->get(), MsgType::kSubscribeReq, 1,
                        EncodeSubscribeRequest(99), 1.0,
                        kDefaultMaxFrameBytes)
                  .ok());
  auto snap = RecvFrame(conn->get(), 2.0, kDefaultMaxFrameBytes);
  ASSERT_TRUE(snap.ok()) << snap.status();
  ASSERT_EQ(snap->header.type, MsgType::kSubscribeResp);

  // Pipeline a fetch of the big value on the SAME connection, then stop
  // reading. Once part of it hits the wire the rest is parked in the
  // write queue, which gates Notify staging.
  ASSERT_TRUE(SendFrame(conn->get(), MsgType::kFetchReq, 2,
                        EncodeKeyRequest(big_key), 1.0,
                        kDefaultMaxFrameBytes)
                  .ok());
  int64_t bytes_before = server.stats().bytes_out;
  ASSERT_TRUE(WaitFor(
      [&] { return server.stats().bytes_out >= bytes_before + 4096; }, 5.0))
      << "big response never started flowing";

  // Hammer one key while the subscriber is deaf: all but the newest
  // pending event for it must be superseded in place.
  constexpr int kPuts = 50;
  uint64_t last_version = 0;
  for (int i = 0; i < kPuts; ++i) {
    auto v = service.Put(hot_key, "v" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << v.status();
    last_version = *v;
  }
  auto side_version = service.Put(side_key, "side");
  ASSERT_TRUE(side_version.ok());

  ASSERT_TRUE(WaitFor(
      [&] { return server.stats().notify_coalesced >= kPuts / 2; }, 5.0))
      << "coalesced=" << server.stats().notify_coalesced;

  // Wake up and drain. Grow the receive buffer back first: the tiny
  // window has done its job (the queue backlog is proven by the coalesce
  // counter), and draining 8 MB through a 2 KB window would crawl.
  int big_rcvbuf = 4 << 20;
  ASSERT_EQ(::setsockopt(conn->get(), SOL_SOCKET, SO_RCVBUF, &big_rcvbuf,
                         sizeof(big_rcvbuf)),
            0);
  auto fetched_frame = RecvFrame(conn->get(), 30.0, kDefaultMaxFrameBytes);
  ASSERT_TRUE(fetched_frame.ok()) << fetched_frame.status();
  ASSERT_EQ(fetched_frame->header.type, MsgType::kFetchResp);
  ASSERT_EQ(fetched_frame->header.seq, 2u);

  int hot_events = 0;
  uint64_t hot_version_seen = 0;
  bool side_seen = false;
  while (!side_seen || hot_version_seen < last_version) {
    auto evt = RecvFrame(conn->get(), 5.0, kDefaultMaxFrameBytes);
    ASSERT_TRUE(evt.ok()) << evt.status();
    ASSERT_EQ(evt->header.type, MsgType::kNotifyEvt);
    auto event = DecodeNotifyEvent(evt->body);
    ASSERT_TRUE(event.ok()) << event.status();
    if (event->key == hot_key) {
      ++hot_events;
      hot_version_seen = event->version;
    } else if (event->key == side_key) {
      side_seen = true;
      EXPECT_EQ(event->version, *side_version);
    }
  }
  EXPECT_EQ(hot_version_seen, last_version)
      << "the delivered event must carry the key's final version";
  EXPECT_LT(hot_events, kPuts / 2)
      << "most same-key events should have been coalesced away";

  // The stream is still live — no drop, no reconnect, no re-sync: a
  // fresh update arrives as an ordinary event.
  auto after = service.Put(hot_key, "after");
  ASSERT_TRUE(after.ok());
  bool after_seen = false;
  while (!after_seen) {
    auto evt = RecvFrame(conn->get(), 5.0, kDefaultMaxFrameBytes);
    ASSERT_TRUE(evt.ok()) << evt.status();
    auto event = DecodeNotifyEvent(evt->body);
    ASSERT_TRUE(event.ok()) << event.status();
    after_seen = event->key == hot_key && event->version == *after;
  }
  RpcServerStats stats = server.stats();
  EXPECT_EQ(stats.subscriptions, 1) << "no reconnect happened";
  EXPECT_GE(stats.notify_coalesced, kPuts / 2);
}

TEST(ReactorTest, SubscriberCountsLiveGapsAsCoalescedWithoutResync) {
  // Subscriber-side contract for coalescing: a seq jump on a LIVE stream
  // (events skipped because the server superseded them in its pending
  // queue) is delivered and counted as coalesced_gaps — no re-sync, which
  // stays reserved for snapshot-ahead gaps and epoch bumps. Driven by a
  // hand-rolled server so the gap is exact.
  auto listener = TcpListen("127.0.0.1", 0, 4);
  ASSERT_TRUE(listener.ok()) << listener.status();
  auto port = BoundPort(listener->get());
  ASSERT_TRUE(port.ok());

  std::atomic<bool> stop{false};
  std::thread fake_server([&] {
    auto readable = WaitReadable(listener->get(), 5.0);
    if (!readable.ok() || !*readable) return;
    int fd = ::accept(listener->get(), nullptr, nullptr);
    if (fd < 0) return;
    UniqueFd conn(fd);
    auto req = RecvFrame(conn.get(), 5.0, kDefaultMaxFrameBytes);
    if (!req.ok() || req->header.type != MsgType::kSubscribeReq) return;
    // Snapshot at (epoch 1, seq 5); then events 6 and 9 — a live gap of 2.
    (void)SendFrame(conn.get(), MsgType::kSubscribeResp, req->header.seq,
                    EncodeSubscribeResponse({{0, 1, 5}}), 1.0,
                    kDefaultMaxFrameBytes);
    UpdateEvent e6{/*region=*/0, /*epoch=*/1, /*seq=*/6, /*key=*/1,
                   /*version=*/10};
    (void)SendFrame(conn.get(), MsgType::kNotifyEvt, 1,
                    EncodeNotifyEvent(e6), 1.0, kDefaultMaxFrameBytes);
    UpdateEvent e9{/*region=*/0, /*epoch=*/1, /*seq=*/9, /*key=*/2,
                   /*version=*/11};
    (void)SendFrame(conn.get(), MsgType::kNotifyEvt, 2,
                    EncodeNotifyEvent(e9), 1.0, kDefaultMaxFrameBytes);
    // Hold the stream open so the subscriber never redials.
    while (!stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  ClusterTopologyConfig tcfg;
  tcfg.num_data_nodes = 1;
  tcfg.replication_factor = 1;
  ClusterTopology topology(tcfg);
  topology.SetEndpoint(0, RpcEndpoint{"127.0.0.1", *port});

  std::atomic<int> updates{0};
  std::atomic<int> resync_calls{0};
  UpdateSubscriberOptions opts;
  opts.poll_tick = 20e-3;
  UpdateSubscriber subscriber(
      &topology, {0},
      [&](Key, uint64_t) { ++updates; },
      [&](NodeId, int) {
        ++resync_calls;
        return int64_t{0};
      },
      opts);

  ASSERT_TRUE(WaitFor([&] { return updates.load() >= 2; }, 5.0))
      << "both events (in-order and gap) must be delivered";
  UpdateSubscriberStats stats = subscriber.stats();
  EXPECT_EQ(stats.notifications, 1);    // seq 6: clean in-order delivery
  EXPECT_EQ(stats.coalesced_gaps, 2);   // seqs 7, 8: superseded upstream
  EXPECT_EQ(stats.gaps_detected, 0);
  EXPECT_EQ(stats.resyncs, 0) << "live gaps must not trigger re-syncs";
  EXPECT_EQ(resync_calls.load(), 0);

  stop.store(true);
  subscriber.Stop();
  fake_server.join();
}

}  // namespace
}  // namespace joinopt
