// NetFaultInjector regression tests: injected partitions must be honored
// by every socket path on BOTH serving backends — at connect time (a
// partitioned pair can never complete a handshake: the dialer fails fast,
// and the acceptor drops the fd even when the dialer skipped its own
// check), and on established connections (half-open: only the blocked
// transmit direction fails, the reverse keeps flowing). Unknown identities
// must never be touched.
//
// The injector is process-wide state, so every test heals all rules on
// exit (NetFaultGuard) — a leaked block would poison unrelated tests.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "joinopt/net/net_fault.h"
#include "joinopt/net/rpc_client.h"
#include "joinopt/net/rpc_server.h"
#include "joinopt/store/log_store.h"

namespace joinopt {
namespace {

UserFn EchoFn() {
  return [](Key key, const std::string& params, const std::string& value) {
    return std::to_string(key) + "/" + params + "/" + value;
  };
}

/// Heals every injected rule on scope exit, pass or fail.
struct NetFaultGuard {
  ~NetFaultGuard() { NetFaultInjector::Instance().HealAll(); }
};

struct ServerFixture {
  explicit ServerFixture(RpcBackend backend, int32_t identity) {
    store = std::make_unique<LogStructuredStore>(LogStoreConfig{});
    for (Key k = 0; k < 16; ++k) {
      store->Put(k, "v" + std::to_string(k));
    }
    service = std::make_unique<LogStoreDataService>(store.get(), 4);
    RpcServerOptions sopts;
    sopts.backend = backend;
    sopts.net_identity = identity;
    server = std::make_unique<RpcServer>(service.get(), EchoFn(), sopts);
    status = server->Start();
  }

  Status status;
  std::unique_ptr<LogStructuredStore> store;
  std::unique_ptr<LogStoreDataService> service;
  std::unique_ptr<RpcServer> server;
};

RpcClientOptions ClientFor(const ServerFixture& fx, int32_t identity) {
  RpcClientOptions copts;
  copts.endpoints.push_back(RpcEndpoint{fx.server->host(), fx.server->port()});
  copts.net_identity = identity;
  copts.connect_deadline = 0.5;
  copts.recovery.request_timeout = 0.3;
  copts.recovery.max_attempts = 1;
  copts.recovery.backoff_base = 1e-3;
  copts.recovery.backoff_max = 2e-3;
  return copts;
}

const RpcBackend kBackends[] = {RpcBackend::kThreadPerConnection,
                                RpcBackend::kReactor};

const char* BackendName(RpcBackend b) {
  return b == RpcBackend::kReactor ? "reactor" : "thread";
}

TEST(NetFaultTest, ConnectFailsWhenEitherDirectionBlocked) {
  NetFaultGuard guard;
  auto& inj = NetFaultInjector::Instance();
  for (RpcBackend backend : kBackends) {
    SCOPED_TRACE(BackendName(backend));
    ServerFixture fx(backend, /*identity=*/1);
    ASSERT_TRUE(fx.status.ok()) << fx.status;

    // Sanity: the pair talks while no rule is active.
    {
      RpcClientService ok_client(ClientFor(fx, 0));
      ASSERT_TRUE(ok_client.Fetch(1).ok());
    }

    // Forward direction blocked (client's SYN dropped): a fresh dial fails.
    inj.BlockOneWay(0, 1);
    {
      RpcClientService client(ClientFor(fx, 0));
      auto fetched = client.Fetch(1);
      EXPECT_FALSE(fetched.ok());
    }
    inj.HealAll();

    // Reverse direction blocked (the SYN-ACK is what gets dropped): the
    // handshake still cannot complete, so the dial must fail just the same.
    inj.BlockOneWay(1, 0);
    {
      RpcClientService client(ClientFor(fx, 0));
      EXPECT_FALSE(client.Fetch(1).ok());
    }
    inj.HealAll();

    // Healed: a fresh client connects and reads again.
    {
      RpcClientService client(ClientFor(fx, 0));
      auto fetched = client.Fetch(1);
      ASSERT_TRUE(fetched.ok()) << fetched.status();
      EXPECT_EQ(fetched->value, "v1");
    }
  }
}

// The accept-path regression (the reactor's accept4 loop used to complete
// handshakes for partitioned peers): a dialer that skips its own
// CheckConnect — here a raw ::connect, standing in for a peer whose block
// rule landed after it already checked — must still be cut off by the
// SERVER, which drops the freshly accepted fd. The client observes an
// immediate EOF instead of a live connection.
TEST(NetFaultTest, AcceptDropsPartitionedPeerOnBothBackends) {
  NetFaultGuard guard;
  auto& inj = NetFaultInjector::Instance();
  for (RpcBackend backend : kBackends) {
    SCOPED_TRACE(BackendName(backend));
    ServerFixture fx(backend, /*identity=*/1);
    ASSERT_TRUE(fx.status.ok()) << fx.status;

    auto raw_connect = [&](int32_t identity, bool expect_eof) {
      int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      ASSERT_GE(fd, 0);
      // Bind first so the ephemeral port exists before the handshake: the
      // identity must be registered before the server can possibly accept.
      sockaddr_in local{};
      local.sin_family = AF_INET;
      local.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      local.sin_port = 0;
      ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&local),
                       sizeof(local)),
                0);
      {
        NetFaultInjector::ScopedIdentity scope(identity);
        inj.OnConnected(fd, fx.server->port());
      }
      sockaddr_in remote{};
      remote.sin_family = AF_INET;
      remote.sin_port = htons(fx.server->port());
      ASSERT_EQ(::inet_pton(AF_INET, fx.server->host().c_str(),
                            &remote.sin_addr),
                1);
      ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&remote),
                          sizeof(remote)),
                0)
          << "loopback handshake itself must succeed (the kernel accepts "
             "into the backlog; the drop happens at accept)";

      // EOF within the deadline means the server closed us at accept;
      // a poll timeout means the server kept the connection.
      pollfd pfd{fd, POLLIN, 0};
      int ready = ::poll(&pfd, 1, expect_eof ? 3000 : 300);
      if (expect_eof) {
        ASSERT_GT(ready, 0) << "server never closed the partitioned peer";
        char byte = 0;
        EXPECT_EQ(::recv(fd, &byte, 1, 0), 0)
            << "expected EOF from the accept-path drop";
      } else {
        EXPECT_EQ(ready, 0)
            << "server closed a healed peer's connection at accept";
      }
      inj.OnClose(fd);
      ::close(fd);
    };

    inj.BlockOneWay(1, 0);  // only the server->client direction
    raw_connect(/*identity=*/0, /*expect_eof=*/true);
    inj.HealAll();
    raw_connect(/*identity=*/0, /*expect_eof=*/false);
  }
}

TEST(NetFaultTest, HalfOpenBlocksOnlyTheTransmitDirection) {
  NetFaultGuard guard;
  auto& inj = NetFaultInjector::Instance();
  for (RpcBackend backend : kBackends) {
    SCOPED_TRACE(BackendName(backend));
    ServerFixture fx(backend, /*identity=*/1);
    ASSERT_TRUE(fx.status.ok()) << fx.status;

    // client->server blocked on an ESTABLISHED connection: the request
    // never leaves the client, so the server's request counter must not
    // move.
    {
      RpcClientService client(ClientFor(fx, 0));
      ASSERT_TRUE(client.Fetch(1).ok());  // pool a live connection
      int64_t before = fx.server->stats().requests;
      inj.BlockOneWay(0, 1);
      EXPECT_FALSE(client.Fetch(2).ok());
      EXPECT_EQ(fx.server->stats().requests, before)
          << "a blocked transmit direction still delivered a request";
      inj.HealAll();
      auto fetched = client.Fetch(2);
      ASSERT_TRUE(fetched.ok()) << fetched.status();
      EXPECT_EQ(fetched->value, "v2");
    }

    // server->client blocked: the request DOES get through (that is the
    // half-open point — the server burns work answering) but the response
    // is black-holed, so the client times out.
    {
      RpcClientService client(ClientFor(fx, 0));
      ASSERT_TRUE(client.Fetch(1).ok());
      int64_t before = fx.server->stats().requests;
      inj.BlockOneWay(1, 0);
      EXPECT_FALSE(client.Fetch(3).ok());
      EXPECT_GT(fx.server->stats().requests, before)
          << "the unblocked request direction should still deliver";
      inj.HealAll();
    }
  }
}

TEST(NetFaultTest, UnknownIdentitiesAreNeverTouched) {
  NetFaultGuard guard;
  auto& inj = NetFaultInjector::Instance();
  ServerFixture fx(RpcBackend::kThreadPerConnection, /*identity=*/1);
  ASSERT_TRUE(fx.status.ok()) << fx.status;

  inj.Block(0, 1);  // symmetric block on the pair the server belongs to
  RpcClientOptions copts = ClientFor(fx, kNetIdentityNone);
  RpcClientService anon(std::move(copts));
  auto fetched = anon.Fetch(1);
  ASSERT_TRUE(fetched.ok())
      << "a client with no declared identity was partitioned: "
      << fetched.status();
  EXPECT_EQ(fetched->value, "v1");
}

TEST(NetFaultTest, RuleBookkeepingCountsAndHeals) {
  NetFaultGuard guard;
  auto& inj = NetFaultInjector::Instance();
  ASSERT_EQ(inj.active_rules(), 0) << "a previous test leaked a block rule";
  inj.BlockOneWay(5, 6);
  EXPECT_TRUE(inj.Blocked(5, 6));
  EXPECT_FALSE(inj.Blocked(6, 5));
  EXPECT_EQ(inj.active_rules(), 1);
  inj.Block(7, 8);
  EXPECT_EQ(inj.active_rules(), 3);
  EXPECT_TRUE(inj.faults_active());
  inj.HealOneWay(5, 6);
  EXPECT_EQ(inj.active_rules(), 2);
  inj.HealAll();
  EXPECT_EQ(inj.active_rules(), 0);
  EXPECT_FALSE(inj.faults_active());
}

}  // namespace
}  // namespace joinopt
