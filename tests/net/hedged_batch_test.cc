// Hedged idempotent batches (DESIGN.md §16): a straggling tagged
// ExecuteBatch is duplicated after the hedge delay — against the SAME
// endpoint, which is safe only because the server's replay-dedup cache
// absorbs the duplicate (the in-flight-wait path makes racing duplicates
// exactly-once). The test pins a one-off server-side stall, watches the
// hedge fire, and checks the duplicate was answered from the dedup cache
// instead of re-executing the batch.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "joinopt/net/rpc_client.h"
#include "joinopt/net/rpc_server.h"
#include "joinopt/store/log_store.h"

namespace joinopt {
namespace {

UserFn EchoFn() {
  return [](Key key, const std::string& params, const std::string& value) {
    return std::to_string(key) + "/" + params + "/" + value;
  };
}

bool WaitFor(const std::function<bool()>& pred, double timeout_sec) {
  auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_sec));
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// Stalls the FIRST ExecuteBatch invocation only — the one-off straggler
/// shape (GC pause, scheduling hiccup) hedging exists for. Counts batch
/// executions so the test can prove the duplicate never re-executed.
class StallFirstBatchService : public DataService {
 public:
  StallFirstBatchService(DataService* inner, double stall_seconds)
      : inner_(inner), stall_seconds_(stall_seconds) {}

  StatusOr<Fetched> Fetch(Key key) override { return inner_->Fetch(key); }
  StatusOr<std::string> Execute(Key key, const std::string& params,
                                const UserFn& fn) override {
    return inner_->Execute(key, params, fn);
  }
  std::vector<StatusOr<std::string>> ExecuteBatch(
      const std::vector<std::pair<Key, std::string>>& items,
      const UserFn& fn) override {
    if (batch_executions_.fetch_add(1, std::memory_order_relaxed) == 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(stall_seconds_));
    }
    return inner_->ExecuteBatch(items, fn);
  }
  StatusOr<ItemStat> Stat(Key key) const override { return inner_->Stat(key); }
  NodeId OwnerOf(Key key) const override { return inner_->OwnerOf(key); }

  int64_t batch_executions() const {
    return batch_executions_.load(std::memory_order_relaxed);
  }

 private:
  DataService* inner_;
  const double stall_seconds_;
  std::atomic<int64_t> batch_executions_{0};
};

TEST(HedgedBatchTest, StragglingTaggedBatchIsHedgedAndDedupAbsorbed) {
  LogStructuredStore store{LogStoreConfig{}};
  for (Key k = 0; k < 8; ++k) store.Put(k, "v" + std::to_string(k));
  LogStoreDataService inner(&store, /*num_shards=*/4);
  StallFirstBatchService stalling(&inner, /*stall_seconds=*/250e-3);

  RpcServer server(&stalling, EchoFn());  // dedup cache on by default
  ASSERT_TRUE(server.Start().ok());

  // Pre-warmup the manager falls back to a fixed 20 ms delay — far under
  // the 250 ms stall, so the hedge reliably fires; budget 1.0 never gates.
  HedgingConfig hc;
  hc.fallback_delay = 20e-3;
  hc.warmup = 1 << 20;
  hc.budget = 1.0;
  hc.burst = 64.0;

  RpcClientOptions copts;
  copts.endpoints.push_back(RpcEndpoint{server.host(), server.port()});
  copts.hedging = std::make_shared<HedgingManager>(hc);
  copts.hedge_idempotent_batches = true;
  RpcClientService client(std::move(copts));

  std::vector<std::pair<Key, std::string>> items;
  for (Key k = 0; k < 4; ++k) items.emplace_back(k, "p" + std::to_string(k));
  std::vector<StatusOr<std::string>> results =
      client.ExecuteBatchTagged(items, client.client_id(), /*batch_seq=*/1);

  ASSERT_EQ(results.size(), items.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status();
    EXPECT_EQ(*results[i], std::to_string(items[i].first) + "/p" +
                               std::to_string(items[i].first) + "/v" +
                               std::to_string(items[i].first));
  }

  // The hedge fired (the primary outlived 20 ms) and, because primary and
  // hedge raced the SAME tag at the SAME server, the dedup cache absorbed
  // one of them: the batch body executed exactly once.
  RecoveryCounters rec = client.recovery_counters();
  EXPECT_EQ(rec.batch_hedges_sent, 1);
  EXPECT_EQ(stalling.batch_executions(), 1)
      << "the hedged duplicate re-executed the batch instead of being "
         "answered from the dedup cache";
  // The loser's completion is recorded asynchronously; the server-side
  // dedup hit is the ground truth it mirrors.
  EXPECT_TRUE(WaitFor(
      [&] {
        return server.stats().batch_dedup_hits >= 1 &&
               client.recovery_counters().batch_hedges_absorbed >= 1;
      },
      2.0))
      << "dedup hit / absorbed-hedge counters never converged: server="
      << server.stats().batch_dedup_hits << " absorbed="
      << client.recovery_counters().batch_hedges_absorbed;
}

TEST(HedgedBatchTest, UntaggedBatchesNeverHedge) {
  LogStructuredStore store{LogStoreConfig{}};
  for (Key k = 0; k < 4; ++k) store.Put(k, "v" + std::to_string(k));
  LogStoreDataService inner(&store, /*num_shards=*/4);
  StallFirstBatchService stalling(&inner, /*stall_seconds=*/100e-3);

  RpcServer server(&stalling, EchoFn());
  ASSERT_TRUE(server.Start().ok());

  HedgingConfig hc;
  hc.fallback_delay = 10e-3;
  hc.warmup = 1 << 20;
  hc.budget = 1.0;
  hc.burst = 64.0;

  RpcClientOptions copts;
  copts.endpoints.push_back(RpcEndpoint{server.host(), server.port()});
  copts.hedging = std::make_shared<HedgingManager>(hc);
  copts.hedge_idempotent_batches = true;
  RpcClientService client(std::move(copts));

  // client_id 0 disables the server's dedup for this tag, so duplicating
  // the batch would risk double execution — the client must not hedge it.
  std::vector<std::pair<Key, std::string>> items{{1, "p"}, {2, "q"}};
  auto results = client.ExecuteBatchTagged(items, /*client_id=*/0,
                                           /*batch_seq=*/1);
  ASSERT_EQ(results.size(), items.size());
  for (auto& r : results) ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(client.recovery_counters().batch_hedges_sent, 0);
  EXPECT_EQ(stalling.batch_executions(), 1);
}

TEST(HedgedBatchTest, OptionOffNeverHedgesBatches) {
  LogStructuredStore store{LogStoreConfig{}};
  store.Put(1, "one");
  LogStoreDataService inner(&store, /*num_shards=*/4);
  StallFirstBatchService stalling(&inner, /*stall_seconds=*/100e-3);
  RpcServer server(&stalling, EchoFn());
  ASSERT_TRUE(server.Start().ok());

  HedgingConfig hc;
  hc.fallback_delay = 10e-3;
  hc.warmup = 1 << 20;
  hc.budget = 1.0;

  RpcClientOptions copts;
  copts.endpoints.push_back(RpcEndpoint{server.host(), server.port()});
  copts.hedging = std::make_shared<HedgingManager>(hc);
  // hedge_idempotent_batches left false: batches stay unhedged even with a
  // manager installed (reads-only hedging is the conservative default).
  RpcClientService client(std::move(copts));

  std::vector<std::pair<Key, std::string>> items{{1, "p"}};
  auto results = client.ExecuteBatchTagged(items, client.client_id(),
                                           /*batch_seq=*/1);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok());
  EXPECT_EQ(client.recovery_counters().batch_hedges_sent, 0);
}

}  // namespace
}  // namespace joinopt
