// Tests for the multi-threaded preMap/map executor and its building
// blocks: the bounded MPMC work queue, the bounded result map, plan
// correctness on one worker, and the concurrency behaviours (single-flight
// fetches, held first-requests, backpressure, update races) under several.
#include "joinopt/engine/parallel_invoker.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "joinopt/engine/bounded_queue.h"
#include "joinopt/engine/latency_service.h"
#include "joinopt/engine/plan_exec.h"

namespace joinopt {
namespace {

struct ApiRig {
  std::unique_ptr<ParallelStore> store;
  std::unique_ptr<LocalDataService> service;

  ApiRig() {
    store = std::make_unique<ParallelStore>(ParallelStoreConfig{},
                                            std::vector<NodeId>{10, 11},
                                            std::vector<NodeId>{0});
    service = std::make_unique<LocalDataService>(store.get());
  }

  void Put(Key k, std::string payload) {
    StoredItem item;
    item.payload = std::move(payload);
    item.size_bytes = static_cast<double>(item.payload.size());
    store->Put(k, item);
  }
};

UserFn Concat() {
  return [](Key key, const std::string& params, const std::string& value) {
    return std::to_string(key) + ":" + params + ":" + value;
  };
}

/// Spins ~`seconds` of wall time so measured tCompute dominates modeled
/// tFetch and ski-rental buys hot keys deterministically.
UserFn SpinningConcat(double seconds = 200e-6) {
  return [seconds](Key key, const std::string& params,
                   const std::string& value) {
    auto start = std::chrono::steady_clock::now();
    volatile uint64_t sink = 0;
    while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count() < seconds) {
      sink = sink + 1;
    }
    (void)sink;
    return std::to_string(key) + ":" + params + ":" +
           value.substr(0, std::min<size_t>(value.size(), 8));
  };
}

ParallelInvokerOptions FastBuyOptions(int threads) {
  ParallelInvokerOptions opt;
  opt.num_threads = threads;
  // High modeled bandwidth keeps tFetch below measured tCompute, so buying
  // wins as soon as a key repeats.
  opt.bandwidth_bytes_per_sec = 1e9;
  return opt;
}

TEST(BoundedQueueTest, FifoAndCloseSemantics) {
  BoundedQueue<int> q(8);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(*q.TryPop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_FALSE(q.TryPop().has_value());
  EXPECT_TRUE(q.Push(3));
  q.Close();
  EXPECT_FALSE(q.Push(4));          // rejected after close...
  EXPECT_EQ(*q.Pop(), 3);           // ...but pending items still drain
  EXPECT_FALSE(q.Pop().has_value());  // closed and drained
}

TEST(BoundedQueueTest, FullQueueBlocksProducerUntilPop) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(2));  // blocks until the consumer pops
    second_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(second_pushed.load());  // backpressure held it
  EXPECT_EQ(*q.Pop(), 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(*q.Pop(), 2);
}

TEST(BoundedResultMapTest, FifoPerRequestId) {
  BoundedResultMap map(0);  // unbounded
  map.Push(7, "a");
  map.Push(7, "b");
  map.Push(9, "c");
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(*map.Claim(7), "a");
  EXPECT_EQ(*map.Claim(7), "b");
  EXPECT_FALSE(map.Claim(7).has_value());
  EXPECT_EQ(*map.Claim(9), "c");
  EXPECT_EQ(map.size(), 0u);
}

TEST(BoundedResultMapTest, DropsOldestWhenOverBound) {
  BoundedResultMap map(8);
  for (uint64_t id = 0; id < 40; ++id) {
    map.Push(id, "v" + std::to_string(id));
  }
  EXPECT_LE(map.size(), 8u);
  EXPECT_GE(map.dropped(), 32);
  EXPECT_FALSE(map.Claim(0).has_value());   // oldest swept
  EXPECT_EQ(*map.Claim(39), "v39");         // newest survives
}

TEST(ParallelInvokerTest, FetchCompComputesCorrectValue) {
  ApiRig rig;
  rig.Put(7, "seven");
  ParallelInvoker invoker(rig.service.get(), Concat(), FastBuyOptions(1));
  auto r = invoker.FetchComp(7, "ctx");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "7:ctx:seven");
}

TEST(ParallelInvokerTest, SubmitThenFetchUsesPrefetchedResult) {
  ApiRig rig;
  rig.Put(7, "seven");
  ParallelInvoker invoker(rig.service.get(), Concat(), FastBuyOptions(2));
  invoker.SubmitComp(7, "a");
  invoker.SubmitComp(7, "b");
  auto ra = invoker.FetchComp(7, "a");
  auto rb = invoker.FetchComp(7, "b");
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(*ra, "7:a:seven");
  EXPECT_EQ(*rb, "7:b:seven");
  EXPECT_EQ(invoker.stats().submitted, 2);
}

TEST(ParallelInvokerTest, DuplicateSubmissionsEachComputeOnce) {
  ApiRig rig;
  rig.Put(3, "v");
  std::atomic<int> calls{0};
  UserFn counting = [&calls](Key, const std::string& p, const std::string&) {
    return p + "#" + std::to_string(calls.fetch_add(1) + 1);
  };
  ParallelInvoker invoker(rig.service.get(), counting, FastBuyOptions(2));
  invoker.SubmitComp(3, "x");
  invoker.SubmitComp(3, "x");
  auto r1 = invoker.FetchComp(3, "x");
  auto r2 = invoker.FetchComp(3, "x");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  // Completion order across workers is scheduling-dependent; each
  // submission must still run the UDF exactly once.
  std::set<std::string> got{*r1, *r2};
  EXPECT_EQ(got, (std::set<std::string>{"x#1", "x#2"}));
  EXPECT_EQ(calls.load(), 2);
  // Third fetch without a submission: computed on demand.
  auto r3 = invoker.FetchComp(3, "x");
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(*r3, "x#3");
}

TEST(ParallelInvokerTest, HotKeyGetsCachedAndServedLocally) {
  ApiRig rig;
  rig.Put(5, std::string(1 << 16, 'm'));
  ParallelInvoker invoker(rig.service.get(), SpinningConcat(),
                          FastBuyOptions(1));
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(invoker.FetchComp(5, "p").ok());
  }
  ParallelInvokerStats s = invoker.stats();
  EXPECT_GT(s.served_from_cache, 30);
  EXPECT_LE(s.fetched_then_computed, 2);
  EXPECT_LT(rig.service->executes(), 20);
  DecisionEngineStats engine = invoker.MergedEngineStats();
  EXPECT_GT(engine.local_memory_hits, 30);
  TieredCacheStats cache = invoker.MergedCacheStats();
  EXPECT_GT(cache.memory_hits, 30);
}

TEST(ParallelInvokerTest, ExpectedKeysHintPreservesBehavior) {
  // The expected_keys hint only pre-reserves per-shard tables; routing and
  // caching behaviour must be identical to the unhinted run.
  ApiRig rig;
  rig.Put(5, std::string(1 << 16, 'm'));
  ParallelInvokerOptions opt = FastBuyOptions(1);
  opt.decision.expected_keys = 100000;  // divided across shards internally
  opt.decision.cache.expected_items = 100000;
  ParallelInvoker invoker(rig.service.get(), SpinningConcat(), opt);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(invoker.FetchComp(5, "p").ok());
  }
  ParallelInvokerStats s = invoker.stats();
  EXPECT_GT(s.served_from_cache, 30);
  DecisionEngineStats engine = invoker.MergedEngineStats();
  EXPECT_GT(engine.local_memory_hits, 30);
}

TEST(ParallelInvokerTest, MissingKeySurfacesNotFound) {
  ApiRig rig;
  ParallelInvoker invoker(rig.service.get(), Concat(), FastBuyOptions(2));
  EXPECT_TRUE(invoker.FetchComp(404, "p").status().IsNotFound());
  invoker.SubmitComp(404, "p");  // prefetch fails, leaves no result...
  EXPECT_TRUE(invoker.FetchComp(404, "p").status().IsNotFound());  // ...so
  // the on-demand retry re-surfaces the error.
}

TEST(ParallelInvokerTest, UpdateInvalidatesCachedPayload) {
  ApiRig rig;
  rig.Put(5, "old-data");
  ParallelInvoker invoker(rig.service.get(), SpinningConcat(),
                          FastBuyOptions(2));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(invoker.FetchComp(5, "p").ok());
  }
  ASSERT_GT(invoker.stats().served_from_cache, 0);
  invoker.Barrier();
  auto update = rig.store->Update(5, [](StoredItem& item) {
    item.payload = "new-data";
    item.size_bytes = 8;
  });
  ASSERT_TRUE(update.ok());
  invoker.OnUpdate(5, update->new_version);
  auto r = invoker.FetchComp(5, "p");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "5:p:new-data");  // never serves the stale payload
}

TEST(ParallelInvokerTest, InFlightFetchesCoalesce) {
  ApiRig rig;
  rig.Put(5, std::string(4096, 'm'));
  ServiceLatencyModel latency;
  latency.fetch_rtt = 5e-3;  // a wide window for duplicates to pile into
  latency.execute_rtt = 2e-3;
  LatencyPaddedService service(rig.service.get(), latency);
  ParallelInvoker invoker(&service, Concat(), FastBuyOptions(4));
  // Prime the key's cost parameters (first-request rule) so the next
  // access buys.
  ASSERT_TRUE(invoker.FetchComp(5, "prime").ok());
  for (int i = 0; i < 8; ++i) {
    invoker.SubmitComp(5, "p" + std::to_string(i));
  }
  invoker.Barrier();
  for (int i = 0; i < 8; ++i) {
    auto r = invoker.FetchComp(5, "p" + std::to_string(i));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->rfind("5:p", 0), 0u);
  }
  // Single flight: the 8 concurrent buys shared one data request.
  EXPECT_EQ(rig.service->fetches(), 1);
  EXPECT_GE(invoker.stats().coalesced_fetches, 1);
}

TEST(ParallelInvokerTest, BlindFirstRequestsAreHeld) {
  ApiRig rig;
  rig.Put(9, std::string(4096, 'm'));
  ServiceLatencyModel latency;
  latency.fetch_rtt = 1e-3;
  latency.execute_rtt = 2e-3;
  LatencyPaddedService service(rig.service.get(), latency);
  ParallelInvoker invoker(&service, Concat(), FastBuyOptions(4));
  for (int i = 0; i < 8; ++i) {
    invoker.SubmitComp(9, "p" + std::to_string(i));
  }
  invoker.Barrier();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(invoker.FetchComp(9, "p" + std::to_string(i)).ok());
  }
  // Exactly one blind compute request went out; everyone else held until
  // its piggybacked costs arrived, then bought via one shared fetch.
  EXPECT_EQ(rig.service->executes(), 1);
  EXPECT_EQ(rig.service->fetches(), 1);
  EXPECT_GE(invoker.stats().held_first_requests, 1);
}

TEST(ParallelInvokerTest, BackpressureKeepsTinyQueueCorrect) {
  ApiRig rig;
  for (Key k = 0; k < 64; ++k) rig.Put(k, "v" + std::to_string(k));
  ServiceLatencyModel latency;
  latency.execute_rtt = 200e-6;
  LatencyPaddedService service(rig.service.get(), latency);
  ParallelInvokerOptions opt = FastBuyOptions(2);
  opt.queue_capacity = 4;  // producers block instead of queueing unboundedly
  ParallelInvoker invoker(&service, Concat(), opt);
  for (Key k = 0; k < 64; ++k) {
    invoker.SubmitComp(k, "p");
  }
  for (Key k = 0; k < 64; ++k) {
    auto r = invoker.FetchComp(k, "p");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, std::to_string(k) + ":p:v" + std::to_string(k));
  }
}

TEST(ParallelInvokerTest, ConcurrentSubmittersAndFetchers) {
  ApiRig rig;
  constexpr int kKeysPerThread = 16;
  constexpr int kOpsPerThread = 200;
  constexpr int kThreads = 4;
  for (Key k = 0; k < kThreads * kKeysPerThread; ++k) {
    rig.Put(k, "v" + std::to_string(k));
  }
  ParallelInvoker invoker(rig.service.get(), Concat(), FastBuyOptions(4));
  std::atomic<int> failures{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        Key k = static_cast<Key>(t * kKeysPerThread + i % kKeysPerThread);
        std::string params = std::to_string(t) + "." + std::to_string(i);
        invoker.SubmitComp(k, params);
        auto r = invoker.FetchComp(k, params);
        if (!r.ok() ||
            *r != std::to_string(k) + ":" + params + ":v" + std::to_string(k)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  invoker.Barrier();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(invoker.stats().submitted, kThreads * kOpsPerThread);
}

/// Serializes every store access behind one mutex: the backing stores are
/// single-writer, and this test mutates them while workers read. The
/// *invoker's* concurrency is what is under test here.
class LockedService : public DataService {
 public:
  explicit LockedService(DataService* inner) : inner_(inner) {}

  StatusOr<Fetched> Fetch(Key key) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Fetch(key);
  }
  StatusOr<std::string> Execute(Key key, const std::string& params,
                                const UserFn& fn) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Execute(key, params, fn);
  }
  StatusOr<ItemStat> Stat(Key key) const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Stat(key);
  }
  NodeId OwnerOf(Key key) const override { return inner_->OwnerOf(key); }

  /// Runs a store mutation under the same lock the reads take.
  template <typename Fn>
  auto WithLock(Fn&& fn) {
    std::lock_guard<std::mutex> lock(mu_);
    return fn();
  }

 private:
  DataService* inner_;
  mutable std::mutex mu_;
};

TEST(ParallelInvokerTest, UpdatesRaceSafelyWithServing) {
  ApiRig rig;
  constexpr Key kKeys = 8;
  std::atomic<uint64_t> latest_version{1};
  for (Key k = 0; k < kKeys; ++k) rig.Put(k, "v1");
  LockedService service(rig.service.get());
  ParallelInvoker invoker(&service, Concat(), FastBuyOptions(4));
  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  for (int t = 0; t < 2; ++t) {
    producers.emplace_back([&, t] {
      int i = 0;
      while (!stop.load()) {
        Key k = static_cast<Key>((t + ++i) % kKeys);
        std::string params = std::to_string(t) + "." + std::to_string(i);
        invoker.SubmitComp(k, params);
        auto r = invoker.FetchComp(k, params);
        // The payload is some version "vN" with N <= the latest published
        // version; the prefix must always be exact.
        std::string prefix = std::to_string(k) + ":" + params + ":v";
        if (!r.ok() || r->rfind(prefix, 0) != 0 ||
            std::stoull(r->substr(prefix.size())) > latest_version.load()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (int round = 2; round < 30; ++round) {
    Key k = static_cast<Key>(round % kKeys);
    // Publish the watermark first: a reader may see the new payload the
    // instant the store applies it.
    latest_version.store(static_cast<uint64_t>(round));
    auto update = service.WithLock([&] {
      return rig.store->Update(k, [round](StoredItem& item) {
        item.payload = "v" + std::to_string(round);
        item.size_bytes = static_cast<double>(item.payload.size());
      });
    });
    ASSERT_TRUE(update.ok());
    invoker.OnUpdate(k, update->new_version);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (auto& p : producers) p.join();
  invoker.Barrier();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ParallelInvokerTest, ResyncWhereDropsStalePayloadsAndRefetches) {
  ApiRig rig;
  rig.Put(1, "old-1xxx");
  rig.Put(2, "old-2xxx");
  ParallelInvoker invoker(rig.service.get(), SpinningConcat(),
                          FastBuyOptions(2));

  // Repeat both keys until ski-rental buys them into the cache.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(invoker.FetchComp(1, "p").ok());
    ASSERT_TRUE(invoker.FetchComp(2, "p").ok());
  }

  // Update the store *without* delivering OnUpdate — the missed-
  // invalidation scenario an epoch gap creates. The cached copy is now
  // provably stale.
  for (Key k : {Key{1}, Key{2}}) {
    auto update = rig.store->Update(k, [](StoredItem& item) {
      item.payload = "new-" + std::to_string(item.payload[4] - '0') + "xxx";
      item.size_bytes = static_cast<double>(item.payload.size());
    });
    ASSERT_TRUE(update.ok());
  }
  auto stale = invoker.FetchComp(1, "p");
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(*stale, "1:p:old-1xxx") << "key 1 was not cached; test is vacuous";

  // Targeted re-sync of key 1 only: key 1 refetches fresh, key 2 still
  // serves its (stale) cached copy — exactly the blast radius asked for.
  int64_t dropped = invoker.ResyncWhere([](Key k) { return k == 1; });
  EXPECT_EQ(dropped, 1);
  EXPECT_EQ(invoker.stats().resync_dropped, 1);
  auto fresh = invoker.FetchComp(1, "p");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(*fresh, "1:p:new-1xxx");
  auto untouched = invoker.FetchComp(2, "p");
  ASSERT_TRUE(untouched.ok());
  EXPECT_EQ(*untouched, "2:p:old-2xxx");

  // Re-syncing an already-clean key drops nothing.
  EXPECT_EQ(invoker.ResyncWhere([](Key k) { return k == 99; }), 0);
  EXPECT_EQ(invoker.stats().resync_dropped, 1);
}

TEST(ParallelInvokerTest, UnclaimedResultsAreBounded) {
  ApiRig rig;
  for (Key k = 0; k < 128; ++k) rig.Put(k, "v");
  ParallelInvokerOptions opt = FastBuyOptions(1);
  opt.max_unclaimed_results = 64;
  ParallelInvoker invoker(rig.service.get(), Concat(), opt);
  for (int i = 0; i < 2000; ++i) {
    invoker.SubmitComp(static_cast<Key>(i % 128), std::to_string(i));
  }
  invoker.Barrier();
  EXPECT_LE(invoker.pending_results(),
            16u * static_cast<size_t>(invoker.num_shards()));
  EXPECT_GT(invoker.stats().dropped_results, 1000);
  // Dropped submissions still compute on demand.
  auto r = invoker.FetchComp(0, "0");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "0:0:v");
}

}  // namespace
}  // namespace joinopt
