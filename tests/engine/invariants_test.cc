// Cross-strategy invariant sweep: for every (strategy, skew, workload-shape)
// combination the engine must satisfy conservation and accounting
// invariants regardless of how requests were routed. These are the
// properties that catch lost tuples, double executions and leaked
// accounting when the engine's internals change.
#include <gtest/gtest.h>

#include <tuple>

#include "joinopt/common/units.h"
#include "joinopt/harness/runner.h"
#include "joinopt/workload/synthetic.h"

namespace joinopt {
namespace {

using Param = std::tuple<Strategy, double, SyntheticKind>;

class EngineInvariants : public ::testing::TestWithParam<Param> {};

TEST_P(EngineInvariants, ConservationAndAccounting) {
  auto [strategy, skew, kind] = GetParam();

  FrameworkRunConfig run;
  run.cluster.num_compute_nodes = 3;
  run.cluster.num_data_nodes = 3;
  run.cluster.machine.cores = 4;
  // Keep runs quick: modest per-item costs.
  SyntheticConfig cfg;
  cfg.kind = kind;
  cfg.zipf_z = skew;
  cfg.tuples_per_node = 500;
  cfg.num_keys = 3000;
  NodeLayout layout = NodeLayout::Of(3, 3);
  GeneratedWorkload w = MakeSyntheticWorkload(cfg, layout);

  JobResult r = RunFrameworkJob(w, strategy, run);

  // 1. Every tuple is processed exactly once.
  EXPECT_EQ(r.tuples_processed, w.total_tuples());
  // 2. Single-stage job: exactly one UDF execution per tuple — no matter
  //    where it ran.
  EXPECT_EQ(r.udf_invocations, w.total_tuples());
  // 3. Compute requests are partitioned between data-node execution and
  //    bounces (load balancing conserves work).
  EXPECT_EQ(r.computed_at_data + r.bounced_to_compute, r.compute_requests);
  // 4. Cache hits only make sense for caching strategies.
  if (strategy != Strategy::kCO && strategy != Strategy::kFO) {
    EXPECT_EQ(r.cache_memory_hits + r.cache_disk_hits, 0);
    EXPECT_EQ(r.data_requests + r.compute_requests, w.total_tuples());
  } else {
    // Caching strategies: every tuple is served from cache, fetched,
    // shipped, or coalesced onto another tuple's in-flight fetch/first
    // request (coalesced tuples issue no request of their own), so the
    // accounted routes bound the total from below but never exceed it.
    int64_t routed = r.cache_memory_hits + r.cache_disk_hits +
                     r.data_requests + r.compute_requests;
    EXPECT_LE(routed, w.total_tuples());
    EXPECT_GT(routed, 0);
  }
  // 5. Time and throughput are consistent and positive.
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_NEAR(r.throughput,
              static_cast<double>(r.tuples_processed) / r.makespan, 1e-6);
  // 6. Determinism: the identical run reproduces bit-equal results.
  JobResult r2 = RunFrameworkJob(w, strategy, run);
  EXPECT_DOUBLE_EQ(r.makespan, r2.makespan);
  EXPECT_EQ(r.sim_events, r2.sim_events);
  EXPECT_EQ(r.cache_memory_hits, r2.cache_memory_hits);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineInvariants,
    ::testing::Combine(
        ::testing::Values(Strategy::kNO, Strategy::kFC, Strategy::kFD,
                          Strategy::kFR, Strategy::kCO, Strategy::kLO,
                          Strategy::kFO),
        ::testing::Values(0.0, 1.0, 1.5),
        ::testing::Values(SyntheticKind::kDataHeavy,
                          SyntheticKind::kComputeHeavy)),
    [](const auto& info) {
      // NOTE: no structured bindings here — the preprocessor would split
      // the macro argument on the commas inside the bracket list.
      double z = std::get<1>(info.param);
      std::string name = StrategyToString(std::get<0>(info.param));
      name += "_z";
      name += z == 0.0 ? "0" : (z == 1.0 ? "1" : "15");
      name += "_";
      name += SyntheticKindToString(std::get<2>(info.param));
      return name;
    });

// The extension invariants hold too: offloading and dynamic batching must
// not break conservation.
class ExtensionInvariants : public ::testing::TestWithParam<int> {};

TEST_P(ExtensionInvariants, ConservationUnderExtensions) {
  FrameworkRunConfig run;
  run.cluster.num_compute_nodes = 3;
  run.cluster.num_data_nodes = 3;
  run.cluster.machine.cores = 4;
  run.engine.offload_cached_under_overload = GetParam() & 1;
  run.engine.dynamic_batch_size = GetParam() & 2;
  SyntheticConfig cfg;
  cfg.kind = SyntheticKind::kComputeHeavy;
  cfg.zipf_z = 1.5;
  cfg.tuples_per_node = 500;
  cfg.num_keys = 3000;
  GeneratedWorkload w = MakeSyntheticWorkload(cfg, NodeLayout::Of(3, 3));
  JobResult r = RunFrameworkJob(w, Strategy::kFO, run);
  EXPECT_EQ(r.tuples_processed, w.total_tuples());
  EXPECT_EQ(r.udf_invocations, w.total_tuples());
  EXPECT_EQ(r.computed_at_data + r.bounced_to_compute, r.compute_requests);
}

INSTANTIATE_TEST_SUITE_P(Flags, ExtensionInvariants,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace joinopt
