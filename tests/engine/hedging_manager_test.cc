#include "joinopt/engine/hedging_manager.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "joinopt/common/random.h"

namespace joinopt {
namespace {

HedgingConfig SmallConfig() {
  HedgingConfig c;
  c.warmup = 16;
  c.window = 256;
  c.refresh_every = 8;
  return c;
}

TEST(HedgingManagerTest, FallbackDelayBeforeWarmup) {
  HedgingConfig c = SmallConfig();
  c.fallback_delay = 42e-3;
  HedgingManager m(c);
  EXPECT_DOUBLE_EQ(m.HedgeDelay(0), 42e-3);
  for (int i = 0; i < c.warmup - 1; ++i) m.ObserveLatency(0, 1e-3);
  EXPECT_DOUBLE_EQ(m.HedgeDelay(0), 42e-3);
  m.ObserveLatency(0, 1e-3);
  // Warmup reached: the delay is now the observed percentile, not 42 ms.
  EXPECT_LT(m.HedgeDelay(0), 10e-3);
}

TEST(HedgingManagerTest, DelayTracksObservedPercentile) {
  HedgingConfig c = SmallConfig();
  c.percentile = 0.95;
  HedgingManager m(c);
  // 95% of requests at ~1 ms, 5% at ~100 ms: p95 sits at the fast mode's
  // upper edge, far below the straggler mode.
  for (int i = 0; i < 2000; ++i) {
    m.ObserveLatency(7, i % 20 == 0 ? 100e-3 : 1e-3);
  }
  double delay = m.HedgeDelay(7);
  EXPECT_GE(delay, 0.8e-3);
  EXPECT_LE(delay, 10e-3);
  // A tighter percentile on the same distribution lands inside the tail.
  EXPECT_GT(m.EndpointQuantile(7, 0.999), 50e-3);
}

TEST(HedgingManagerTest, PerEndpointIsolation) {
  HedgingManager m(SmallConfig());
  for (int i = 0; i < 500; ++i) {
    m.ObserveLatency(1, 1e-3);    // fast endpoint
    m.ObserveLatency(2, 200e-3);  // degraded endpoint
  }
  EXPECT_LT(m.HedgeDelay(1), 5e-3);
  EXPECT_GT(m.HedgeDelay(2), 100e-3);
}

TEST(HedgingManagerTest, WindowRotationForgetsOldDistribution) {
  HedgingConfig c = SmallConfig();
  c.window = 128;
  HedgingManager m(c);
  // A slow era followed by > 2 windows of fast observations: the rotation
  // must drop the slow history entirely.
  for (int i = 0; i < 200; ++i) m.ObserveLatency(0, 500e-3);
  EXPECT_GT(m.HedgeDelay(0), 100e-3);
  for (int i = 0; i < 3 * c.window; ++i) m.ObserveLatency(0, 1e-3);
  EXPECT_LT(m.HedgeDelay(0), 5e-3);
}

TEST(HedgingManagerTest, DelayClampedToConfiguredRange) {
  HedgingConfig c = SmallConfig();
  c.min_delay = 1e-3;
  c.max_delay = 50e-3;
  HedgingManager m(c);
  for (int i = 0; i < 100; ++i) m.ObserveLatency(0, 5e-6);  // ultra fast
  EXPECT_DOUBLE_EQ(m.HedgeDelay(0), 1e-3);
  for (int i = 0; i < 2000; ++i) m.ObserveLatency(1, 2.0);  // timeout-land
  EXPECT_DOUBLE_EQ(m.HedgeDelay(1), 50e-3);
}

TEST(HedgingManagerTest, BudgetDeniesWithoutTokens) {
  HedgingConfig c = SmallConfig();
  c.budget = 0.1;
  HedgingManager m(c);
  // No primaries registered yet: the bucket starts empty.
  EXPECT_FALSE(m.TryAcquireHedge());
  EXPECT_EQ(m.stats().hedges_denied, 1);
  // 10 primaries at budget 0.1 accrue exactly one token.
  for (int i = 0; i < 10; ++i) m.OnRequestIssued();
  EXPECT_TRUE(m.TryAcquireHedge());
  EXPECT_FALSE(m.TryAcquireHedge());
}

TEST(HedgingManagerTest, BurstCapsAccruedTokens) {
  HedgingConfig c = SmallConfig();
  c.budget = 0.5;
  c.burst = 2.0;
  HedgingManager m(c);
  for (int i = 0; i < 1000; ++i) m.OnRequestIssued();
  // A long hedge-free stretch banks at most `burst` tokens.
  EXPECT_TRUE(m.TryAcquireHedge());
  EXPECT_TRUE(m.TryAcquireHedge());
  EXPECT_FALSE(m.TryAcquireHedge());
}

// The hard invariant DESIGN.md §15 promises: at every instant, under any
// interleaving of primaries and hedge attempts, granted hedges never exceed
// budget * primaries.
TEST(HedgingManagerTest, RealizedRateNeverExceedsBudgetProperty) {
  for (uint64_t seed : {1ULL, 7ULL, 42ULL, 12345ULL}) {
    for (double budget : {0.01, 0.05, 0.2}) {
      HedgingConfig c = SmallConfig();
      c.budget = budget;
      c.burst = 4.0;
      HedgingManager m(c);
      Rng rng(seed);
      for (int step = 0; step < 20000; ++step) {
        if (rng.NextDouble() < 0.6) {
          m.OnRequestIssued();
        } else {
          m.TryAcquireHedge();  // outcome checked via the invariant below
        }
        HedgingStats s = m.stats();
        ASSERT_LE(static_cast<double>(s.hedges_granted),
                  budget * static_cast<double>(s.primaries) + 1e-9)
            << "seed=" << seed << " budget=" << budget << " step=" << step;
      }
      HedgingStats s = m.stats();
      EXPECT_LE(s.realized_rate(), budget + 1e-12);
      EXPECT_GT(s.hedges_granted, 0);  // the budget is usable, not just safe
    }
  }
}

TEST(HedgingManagerTest, NegativeLatencyIgnored) {
  HedgingManager m(SmallConfig());
  m.ObserveLatency(0, -1.0);
  EXPECT_EQ(m.stats().observations, 0);
}

TEST(HedgingManagerTest, FromEnvOverridesAndClamps) {
  HedgingConfig base;
  base.percentile = 0.95;
  base.budget = 0.05;

  ::setenv("JOINOPT_HEDGE_PERCENTILE", "0.99", 1);
  ::setenv("JOINOPT_HEDGE_BUDGET", "0.10", 1);
  HedgingConfig c = HedgingConfig::FromEnv(base);
  EXPECT_DOUBLE_EQ(c.percentile, 0.99);
  EXPECT_DOUBLE_EQ(c.budget, 0.10);

  ::setenv("JOINOPT_HEDGE_PERCENTILE", "7.5", 1);  // clamped to 0.9999
  ::setenv("JOINOPT_HEDGE_BUDGET", "not-a-number", 1);  // falls back
  c = HedgingConfig::FromEnv(base);
  EXPECT_DOUBLE_EQ(c.percentile, 0.9999);
  EXPECT_DOUBLE_EQ(c.budget, 0.05);

  ::unsetenv("JOINOPT_HEDGE_PERCENTILE");
  ::unsetenv("JOINOPT_HEDGE_BUDGET");
  c = HedgingConfig::FromEnv(base);
  EXPECT_DOUBLE_EQ(c.percentile, 0.95);
  EXPECT_DOUBLE_EQ(c.budget, 0.05);
}

}  // namespace
}  // namespace joinopt
