// Tests for engine behaviours added on top of the paper's core algorithm:
// fetch/first-request coalescing, the data-node block cache, per-RPC costs,
// and the paper's future-work extensions (offload-cached, dynamic batch
// sizing, elastic input rebalancing).
#include <gtest/gtest.h>

#include "joinopt/common/random.h"
#include "joinopt/common/units.h"
#include "joinopt/engine/batcher.h"
#include "joinopt/engine/join_job.h"

namespace joinopt {
namespace {

struct Rig {
  ClusterConfig cluster_config;
  Simulation sim;
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<ParallelStore> store;

  explicit Rig(int compute = 2, int data = 2) {
    cluster_config.num_compute_nodes = compute;
    cluster_config.num_data_nodes = data;
    cluster_config.machine.cores = 4;
    cluster = std::make_unique<Cluster>(cluster_config);
    std::vector<NodeId> data_ids, compute_ids;
    for (int j = 0; j < data; ++j) data_ids.push_back(cluster->data_node_id(j));
    for (int i = 0; i < compute; ++i) compute_ids.push_back(i);
    store = std::make_unique<ParallelStore>(ParallelStoreConfig{}, data_ids,
                                            compute_ids);
  }

  void Load(int keys, double sv, double udf) {
    for (Key k = 0; k < static_cast<Key>(keys); ++k) {
      StoredItem item;
      item.size_bytes = sv;
      item.udf_cost = udf;
      store->Put(k, item);
    }
  }

  std::vector<InputTuple> HotKeyInput(int n, Key hot, double hot_fraction,
                                      int num_keys, uint64_t seed) {
    Rng rng(seed);
    std::vector<InputTuple> input;
    for (int i = 0; i < n; ++i) {
      InputTuple t;
      t.keys = {rng.Bernoulli(hot_fraction)
                    ? hot
                    : rng.NextBounded(static_cast<uint64_t>(num_keys))};
      input.push_back(t);
    }
    return input;
  }
};

TEST(CoalescingTest, HotKeyIsFetchedOncePerComputeNode) {
  Rig rig;
  rig.Load(100, MiB(1), Milliseconds(1));  // big values: duplicates hurt
  EngineConfig cfg;
  JoinJob job(&rig.sim, rig.cluster.get(), {rig.store.get()}, Strategy::kFO,
              cfg);
  for (int i = 0; i < 2; ++i) {
    job.SetInput(i, rig.HotKeyInput(1500, 7, 0.6, 100, 100 + i));
  }
  JobResult r = job.Run();
  EXPECT_EQ(r.tuples_processed, 3000);
  // ~900 hot tuples per node but at most one in-flight fetch per key per
  // node: the hot key accounts for <= 2 of the data requests, and total
  // fetches stay near the distinct-key count.
  EXPECT_LT(r.data_requests, 2 * 100 + 20);
}

TEST(CoalescingTest, FirstRequestsDoNotFloodDataNode) {
  Rig rig;
  rig.Load(100, KiB(8), Milliseconds(50));
  EngineConfig cfg;
  JoinJob job(&rig.sim, rig.cluster.get(), {rig.store.get()}, Strategy::kFO,
              cfg);
  for (int i = 0; i < 2; ++i) {
    job.SetInput(i, rig.HotKeyInput(2000, 7, 0.7, 100, 200 + i));
  }
  JobResult r = job.Run();
  // Without coalescing, both nodes' whole prefetch windows (2 x 256, ~70%
  // hot) would go out as blind first requests before any cost parameters
  // return, plus per-key rents. With it, compute requests actually *sent*
  // stay near (distinct keys) x (first + a rent or two) per node.
  EXPECT_LT(r.compute_requests, 700);
  EXPECT_EQ(r.tuples_processed, 4000);
}

TEST(BlockCacheTest, RepeatedComputeRequestsSkipDisk) {
  Rig with_cache, without_cache;
  with_cache.Load(50, KiB(64), Microseconds(10));
  without_cache.Load(50, KiB(64), Microseconds(10));
  EngineConfig cache_on;
  cache_on.data_node_block_cache_bytes = GiB(1);
  EngineConfig cache_off;
  cache_off.data_node_block_cache_bytes = 0;

  auto run = [](Rig& rig, const EngineConfig& cfg) {
    JoinJob job(&rig.sim, rig.cluster.get(), {rig.store.get()},
                Strategy::kFD, cfg);
    for (int i = 0; i < 2; ++i) {
      job.SetInput(i, rig.HotKeyInput(3000, 7, 0.8, 50, 300 + i));
    }
    return job.Run();
  };
  JobResult on = run(with_cache, cache_on);
  JobResult off = run(without_cache, cache_off);
  // With the block cache the hot data node's disk serves each key ~once.
  double disk_on = 0, disk_off = 0;
  for (int j = 0; j < 2; ++j) {
    disk_on += with_cache.cluster->data_node(j).disk().busy_time();
    disk_off += without_cache.cluster->data_node(j).disk().busy_time();
  }
  EXPECT_LT(disk_on * 5, disk_off);
  EXPECT_LE(on.makespan, off.makespan);
}

TEST(DynamicBatchTest, AdaptsSizeToArrivalRate) {
  Simulation sim;
  std::vector<size_t> flush_sizes;
  Batcher::DynamicSizing dynamic;
  dynamic.enabled = true;
  dynamic.target_delay = 1e-3;
  Batcher batcher(&sim, 64, 1.0, true,
                  [&](std::vector<RequestItem> items) {
                    flush_sizes.push_back(items.size());
                  },
                  dynamic);
  // Fast arrivals: 10 us apart -> target size ~ 100.
  RequestItem item;
  for (int i = 0; i < 400; ++i) {
    sim.Schedule(i * 1e-5, [&] { batcher.Add(item); });
  }
  sim.Run();
  batcher.Flush();
  ASSERT_FALSE(flush_sizes.empty());
  EXPECT_GT(flush_sizes.front(), 50u);  // grew beyond the trickle size

  // Slow arrivals: 10 ms apart -> size collapses toward 1.
  flush_sizes.clear();
  for (int i = 0; i < 20; ++i) {
    sim.Schedule(sim.now() + i * 1e-2, [&] { batcher.Add(item); });
  }
  sim.Run();
  batcher.Flush();
  ASSERT_FALSE(flush_sizes.empty());
  EXPECT_LE(flush_sizes.back(), 4u);
}

TEST(OffloadCachedTest, RelievesComputeNodesUnderExtremeSkew) {
  // Extreme skew + expensive UDF: vanilla FO concentrates all cached-key
  // work at the compute nodes; the offload extension ships some of it back.
  auto run = [](bool offload) {
    Rig rig;
    rig.Load(50, KiB(4), Milliseconds(40));
    EngineConfig cfg;
    cfg.offload_cached_under_overload = offload;
    JoinJob job(&rig.sim, rig.cluster.get(), {rig.store.get()},
                Strategy::kFO, cfg);
    for (int i = 0; i < 2; ++i) {
      job.SetInput(i, rig.HotKeyInput(1500, 7, 0.9, 50, 400 + i));
    }
    return job.Run();
  };
  JobResult vanilla = run(false);
  JobResult offloaded = run(true);
  EXPECT_EQ(offloaded.tuples_processed, vanilla.tuples_processed);
  // The extension moves UDFs to the data nodes...
  EXPECT_GT(offloaded.computed_at_data + offloaded.bounced_to_compute,
            vanilla.computed_at_data + vanilla.bounced_to_compute);
  // ...and does not hurt the makespan.
  EXPECT_LE(offloaded.makespan, vanilla.makespan * 1.05);
}

TEST(ElasticityTest, RebalanceInputMovesWorkToIdleNode) {
  // All input lands on node 0; node 1 idles. Mid-run, half of node 0's
  // remaining input moves to node 1 — possible because compute nodes hold
  // no join state.
  auto run = [](bool rebalance) {
    Rig rig;
    rig.Load(200, KiB(4), Milliseconds(10));
    EngineConfig cfg;
    JoinJob job(&rig.sim, rig.cluster.get(), {rig.store.get()},
                Strategy::kFC, cfg);
    job.SetInput(0, rig.HotKeyInput(3000, 7, 0.2, 200, 500));
    job.SetInput(1, {});
    if (rebalance) {
      rig.sim.Schedule(0.2, [&job] {
        int64_t moved = job.RebalanceInput(0, 1, 0.5);
        EXPECT_GT(moved, 100);
      });
    }
    return job.Run();
  };
  JobResult solo = run(false);
  JobResult elastic = run(true);
  EXPECT_EQ(elastic.tuples_processed, 3000);
  EXPECT_LT(elastic.makespan, solo.makespan * 0.75);
}

TEST(ElasticityTest, RebalanceFromExhaustedNodeIsNoop) {
  Rig rig;
  rig.Load(10, KiB(1), Microseconds(10));
  EngineConfig cfg;
  JoinJob job(&rig.sim, rig.cluster.get(), {rig.store.get()}, Strategy::kFC,
              cfg);
  job.SetInput(0, rig.HotKeyInput(50, 1, 0.5, 10, 600));
  job.SetInput(1, {});
  // Long after completion: nothing left to move.
  rig.sim.Schedule(1000.0, [&job] {
    EXPECT_EQ(job.RebalanceInput(0, 1, 1.0), 0);
  });
  JobResult r = job.Run();
  EXPECT_EQ(r.tuples_processed, 50);
}

TEST(RpcCostTest, PerMessageCostChargedAtDataNode) {
  Rig rig(1, 1);
  rig.Load(10, KiB(1), Microseconds(1));
  EngineConfig cfg;
  cfg.rpc_cpu_cost = 5e-3;  // exaggerated for visibility
  cfg.batch_size = 1;       // one message per item
  JoinJob job(&rig.sim, rig.cluster.get(), {rig.store.get()}, Strategy::kFD,
              cfg);
  job.SetInput(0, rig.HotKeyInput(100, 1, 0.5, 10, 700));
  job.Run();
  // 100 request messages x 5 ms >= 0.5 s of CPU at the data node.
  EXPECT_GE(rig.cluster->data_node(0).cpu().busy_time(), 0.5);
}

}  // namespace
}  // namespace joinopt
