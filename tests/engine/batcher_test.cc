#include "joinopt/engine/batcher.h"

#include <gtest/gtest.h>

namespace joinopt {
namespace {

RequestItem Item(Key k = 0) {
  RequestItem item;
  item.key = k;
  return item;
}

TEST(BatcherTest, FlushesWhenFull) {
  Simulation sim;
  std::vector<size_t> flushes;
  Batcher b(&sim, 3, 1.0, true, [&](std::vector<RequestItem> items) {
    flushes.push_back(items.size());
  });
  b.Add(Item(1));
  b.Add(Item(2));
  EXPECT_TRUE(flushes.empty());
  b.Add(Item(3));
  ASSERT_EQ(flushes.size(), 1u);
  EXPECT_EQ(flushes[0], 3u);
  EXPECT_EQ(b.pending(), 0u);
}

TEST(BatcherTest, TimeoutFlushesPartialBatch) {
  Simulation sim;
  std::vector<double> flush_times;
  Batcher b(&sim, 100, 0.005, true, [&](std::vector<RequestItem>) {
    flush_times.push_back(sim.now());
  });
  sim.Schedule(0.0, [&] { b.Add(Item()); });
  sim.Run();
  ASSERT_EQ(flush_times.size(), 1u);
  EXPECT_NEAR(flush_times[0], 0.005, 1e-9);
}

TEST(BatcherTest, TimeoutMeasuredFromFirstItem) {
  Simulation sim;
  std::vector<double> flush_times;
  Batcher b(&sim, 100, 0.010, true, [&](std::vector<RequestItem>) {
    flush_times.push_back(sim.now());
  });
  sim.Schedule(0.002, [&] { b.Add(Item(1)); });
  sim.Schedule(0.008, [&] { b.Add(Item(2)); });  // does not re-arm
  sim.Run();
  ASSERT_EQ(flush_times.size(), 1u);
  EXPECT_NEAR(flush_times[0], 0.012, 1e-9);
}

TEST(BatcherTest, StaleTimeoutDoesNotDoubleFlush) {
  Simulation sim;
  int flushes = 0;
  Batcher b(&sim, 2, 0.005, true,
            [&](std::vector<RequestItem>) { ++flushes; });
  sim.Schedule(0.0, [&] {
    b.Add(Item(1));
    b.Add(Item(2));  // size-triggered flush; timeout event now stale
  });
  sim.Schedule(0.004, [&] { b.Add(Item(3)); });  // fresh batch, new epoch
  sim.Run();
  // Flush 1 at t=0 (full), flush 2 at t=0.009 (timeout of the new batch).
  EXPECT_EQ(flushes, 2);
}

TEST(BatcherTest, DisabledFlushesEveryItem) {
  Simulation sim;
  int flushes = 0;
  Batcher b(&sim, 100, 1.0, false,
            [&](std::vector<RequestItem> items) {
              ++flushes;
              EXPECT_EQ(items.size(), 1u);
            });
  for (int i = 0; i < 5; ++i) b.Add(Item());
  EXPECT_EQ(flushes, 5);
}

TEST(BatcherTest, ManualFlushDrains) {
  Simulation sim;
  int flushes = 0;
  Batcher b(&sim, 100, 1.0, true,
            [&](std::vector<RequestItem>) { ++flushes; });
  b.Add(Item());
  b.Flush();
  EXPECT_EQ(flushes, 1);
  b.Flush();  // empty: no-op
  EXPECT_EQ(flushes, 1);
  EXPECT_EQ(b.flushes(), 1);
}

TEST(BatcherTest, StaticEffectiveSize) {
  Simulation sim;
  Batcher b(&sim, 42, 1.0, true, [](std::vector<RequestItem>) {});
  EXPECT_EQ(b.EffectiveBatchSize(), 42);
}

}  // namespace
}  // namespace joinopt
