// Tests for the real (non-simulated) Section 7 API: submitComp/fetchComp
// over actual payloads, with live ski-rental caching.
#include "joinopt/engine/async_api.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>

namespace joinopt {
namespace {

struct ApiRig {
  std::unique_ptr<ParallelStore> store;
  std::unique_ptr<LocalDataService> service;

  ApiRig() {
    store = std::make_unique<ParallelStore>(ParallelStoreConfig{},
                                            std::vector<NodeId>{10, 11},
                                            std::vector<NodeId>{0});
    service = std::make_unique<LocalDataService>(store.get());
  }

  void Put(Key k, std::string payload) {
    StoredItem item;
    item.payload = std::move(payload);
    item.size_bytes = static_cast<double>(item.payload.size());
    store->Put(k, item);
  }
};

UserFn Concat() {
  return [](Key key, const std::string& params, const std::string& value) {
    return std::to_string(key) + ":" + params + ":" + value;
  };
}

/// A UDF that measurably costs ~200 us of wall time (spin on the steady
/// clock), so the engine's measured tCompute reliably dominates the modeled
/// tFetch and ski-rental buys hot keys deterministically.
UserFn SpinningConcat(double seconds = 200e-6) {
  return [seconds](Key key, const std::string& params,
                   const std::string& value) {
    auto start = std::chrono::steady_clock::now();
    uint64_t spin = 0;
    volatile uint64_t sink = 0;
    while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count() < seconds) {
      ++spin;
    }
    sink = spin;
    (void)sink;
    return std::to_string(key) + ":" + params + ":" +
           value.substr(0, std::min<size_t>(value.size(), 8));
  };
}

AsyncInvoker::Options FastBuyOptions() {
  AsyncInvoker::Options opt;
  // High modeled bandwidth keeps tFetch well below the spinning UDF's
  // measured tCompute, so buying wins as soon as the key repeats.
  opt.bandwidth_bytes_per_sec = 1e9;
  return opt;
}

TEST(LocalDataServiceTest, FetchExecuteStat) {
  ApiRig rig;
  rig.Put(1, "model-one");
  LocalDataService& svc = *rig.service;
  auto fetched = svc.Fetch(1);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->value, "model-one");
  EXPECT_EQ(fetched->version, 1u);
  auto result = svc.Execute(1, "p", Concat());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, "1:p:model-one");
  auto stat = svc.Stat(1);
  ASSERT_TRUE(stat.ok());
  EXPECT_DOUBLE_EQ(stat->size_bytes, 9.0);
  EXPECT_EQ(svc.stats(), 1);
  EXPECT_TRUE(svc.Fetch(99).status().IsNotFound());
  EXPECT_TRUE(svc.Execute(99, "p", Concat()).status().IsNotFound());
  EXPECT_EQ(svc.fetches(), 2);
  EXPECT_EQ(svc.executes(), 2);
}

TEST(AsyncInvokerTest, FetchCompComputesCorrectValue) {
  ApiRig rig;
  rig.Put(7, "seven");
  AsyncInvoker invoker(rig.service.get(), Concat());
  auto r = invoker.FetchComp(7, "ctx");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "7:ctx:seven");
}

TEST(AsyncInvokerTest, SubmitThenFetchUsesPrefetchedResult) {
  ApiRig rig;
  rig.Put(7, "seven");
  AsyncInvoker invoker(rig.service.get(), Concat());
  invoker.SubmitComp(7, "a");
  invoker.SubmitComp(7, "b");
  EXPECT_EQ(invoker.stats().submitted, 2);
  auto ra = invoker.FetchComp(7, "a");
  auto rb = invoker.FetchComp(7, "b");
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(*ra, "7:a:seven");
  EXPECT_EQ(*rb, "7:b:seven");
}

TEST(AsyncInvokerTest, DuplicateSubmissionsQueueFifo) {
  ApiRig rig;
  rig.Put(3, "v");
  int calls = 0;
  UserFn counting = [&calls](Key, const std::string& p, const std::string&) {
    ++calls;
    return p + "#" + std::to_string(calls);
  };
  AsyncInvoker invoker(rig.service.get(), counting);
  invoker.SubmitComp(3, "x");
  invoker.SubmitComp(3, "x");
  EXPECT_EQ(*invoker.FetchComp(3, "x"), "x#1");
  EXPECT_EQ(*invoker.FetchComp(3, "x"), "x#2");
  // Third fetch without submission: computed on demand.
  EXPECT_EQ(*invoker.FetchComp(3, "x"), "x#3");
}

TEST(AsyncInvokerTest, HotKeyGetsCachedAndServedLocally) {
  ApiRig rig;
  rig.Put(5, std::string(1 << 16, 'm'));
  AsyncInvoker invoker(rig.service.get(), SpinningConcat(), FastBuyOptions());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(invoker.FetchComp(5, "p").ok());
  }
  const auto& s = invoker.stats();
  EXPECT_GT(s.served_from_cache, 30);
  EXPECT_LE(s.fetched_then_computed, 2);
  // The service stopped seeing the hot key after the buy.
  EXPECT_LT(rig.service->executes(), 20);
}

TEST(AsyncInvokerTest, ColdKeysStayDelegated) {
  ApiRig rig;
  for (Key k = 0; k < 100; ++k) rig.Put(k, "v" + std::to_string(k));
  AsyncInvoker invoker(rig.service.get(), Concat(), FastBuyOptions());
  for (Key k = 0; k < 100; ++k) {
    ASSERT_TRUE(invoker.FetchComp(k, "p").ok());
  }
  // One access each: everything delegated (first-request rule), nothing
  // bought.
  EXPECT_EQ(invoker.stats().delegated, 100);
  EXPECT_EQ(invoker.stats().served_from_cache, 0);
}

TEST(AsyncInvokerTest, UpdateInvalidatesCachedPayload) {
  ApiRig rig;
  rig.Put(5, "old-data");
  AsyncInvoker invoker(rig.service.get(), SpinningConcat(), FastBuyOptions());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(invoker.FetchComp(5, "p").ok());
  }
  ASSERT_GT(invoker.stats().served_from_cache, 0);
  auto update = rig.store->Update(
      5, [](StoredItem& item) {
        item.payload = "new-data";
        item.size_bytes = 8;
      });
  ASSERT_TRUE(update.ok());
  invoker.OnUpdate(5, update->new_version);
  auto r = invoker.FetchComp(5, "p");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "5:p:new-data");  // never serves the stale payload
}

TEST(LogStoreDataServiceTest, FullyRealPathWorksEndToEnd) {
  LogStructuredStore store;
  store.Put(9, "log-backed-model");
  LogStoreDataService service(&store, /*num_shards=*/4);
  AsyncInvoker invoker(&service, SpinningConcat(), FastBuyOptions());
  for (int i = 0; i < 30; ++i) {
    auto r = invoker.FetchComp(9, "p");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, "9:p:log-back");
  }
  // Ski-rental bought the key off the log store.
  EXPECT_GT(invoker.stats().served_from_cache, 15);
  // Updates through the log store bump versions the invoker can see.
  uint64_t v2 = store.Put(9, "retrained-model!");
  invoker.OnUpdate(9, v2);
  auto r = invoker.FetchComp(9, "p");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "9:p:retraine");
}

TEST(LogStoreDataServiceTest, ShardPlacementIsStable) {
  LogStructuredStore store;
  LogStoreDataService service(&store, 8);
  for (Key k = 0; k < 100; ++k) {
    NodeId owner = service.OwnerOf(k);
    EXPECT_GE(owner, 0);
    EXPECT_LT(owner, 8);
    EXPECT_EQ(owner, service.OwnerOf(k));
  }
}

TEST(LogStoreDataServiceTest, MissingKeysAndStatCounter) {
  LogStructuredStore store;
  LogStoreDataService service(&store, /*num_shards=*/4);
  EXPECT_TRUE(service.Fetch(7).status().IsNotFound());
  EXPECT_TRUE(service.Execute(7, "p", Concat()).status().IsNotFound());
  EXPECT_TRUE(service.Stat(7).status().IsNotFound());
  // Every probe is counted, hits and misses alike.
  EXPECT_EQ(service.fetches(), 1);
  EXPECT_EQ(service.executes(), 1);
  EXPECT_EQ(service.stats(), 1);
  store.Put(7, "value");
  auto stat = service.Stat(7);
  ASSERT_TRUE(stat.ok());
  EXPECT_DOUBLE_EQ(stat->size_bytes, 5.0);
  EXPECT_EQ(stat->version, 1u);
  EXPECT_EQ(service.stats(), 2);
}

TEST(LogStoreDataServiceTest, VersionsPropagateThroughUpdates) {
  LogStructuredStore store;
  LogStoreDataService service(&store, /*num_shards=*/4);
  store.Put(3, "first");
  auto f1 = service.Fetch(3);
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(f1->value, "first");
  EXPECT_EQ(f1->version, 1u);
  store.Put(3, "second");
  auto f2 = service.Fetch(3);
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(f2->value, "second");
  EXPECT_EQ(f2->version, 2u);
  auto stat = service.Stat(3);
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->version, 2u);
  ASSERT_TRUE(store.Delete(3).ok());
  EXPECT_TRUE(service.Fetch(3).status().IsNotFound());
}

TEST(AsyncInvokerTest, UnclaimedResultsAreBounded) {
  ApiRig rig;
  for (Key k = 0; k < 64; ++k) rig.Put(k, "v");
  AsyncInvoker::Options opt;
  opt.max_unclaimed_results = 32;
  AsyncInvoker invoker(rig.service.get(), Concat(), opt);
  for (int i = 0; i < 1000; ++i) {
    invoker.SubmitComp(static_cast<Key>(i % 64), std::to_string(i));
  }
  // The result map held at most the bound; the oldest half was swept.
  EXPECT_LE(invoker.pending_results(), 32u);
  EXPECT_GE(invoker.stats().dropped_results, 900);
  // A dropped submission recomputes on demand with the right value.
  auto r = invoker.FetchComp(0, "0");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "0:0:v");
}

TEST(AsyncInvokerTest, MissingKeySurfacesNotFound) {
  ApiRig rig;
  AsyncInvoker invoker(rig.service.get(), Concat());
  EXPECT_TRUE(invoker.FetchComp(404, "p").status().IsNotFound());
  invoker.SubmitComp(404, "p");  // error swallowed at submit...
  EXPECT_TRUE(invoker.FetchComp(404, "p").status().IsNotFound());  // ...resurfaces
}

}  // namespace
}  // namespace joinopt
