#include "joinopt/engine/join_job.h"

#include <gtest/gtest.h>

#include <memory>

#include "joinopt/common/random.h"
#include "joinopt/common/units.h"

namespace joinopt {
namespace {

struct TestRig {
  ClusterConfig cluster_config;
  std::unique_ptr<Simulation> sim;
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<ParallelStore> store;

  explicit TestRig(int compute = 2, int data = 2) {
    cluster_config.num_compute_nodes = compute;
    cluster_config.num_data_nodes = data;
    cluster_config.machine.cores = 4;
    sim = std::make_unique<Simulation>();
    cluster = std::make_unique<Cluster>(cluster_config);
    std::vector<NodeId> data_ids, compute_ids;
    for (int j = 0; j < data; ++j) data_ids.push_back(cluster->data_node_id(j));
    for (int i = 0; i < compute; ++i) compute_ids.push_back(i);
    store = std::make_unique<ParallelStore>(ParallelStoreConfig{}, data_ids,
                                            compute_ids);
  }

  void LoadStore(int num_keys, double sv, double udf_cost) {
    for (Key k = 0; k < static_cast<Key>(num_keys); ++k) {
      StoredItem item;
      item.size_bytes = sv;
      item.udf_cost = udf_cost;
      store->Put(k, item);
    }
  }

  std::vector<InputTuple> ZipfInput(int n, int num_keys, double z,
                                    uint64_t seed) {
    Rng rng(seed);
    ZipfDistribution zipf(static_cast<uint64_t>(num_keys), z);
    std::vector<InputTuple> input;
    input.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      InputTuple t;
      t.keys = {zipf.Sample(rng)};
      t.param_bytes = 128;
      input.push_back(std::move(t));
    }
    return input;
  }

  JobResult RunStrategy(Strategy s, int tuples_per_node, int num_keys,
                        double z, EngineConfig cfg = {}) {
    JoinJob job(sim.get(), cluster.get(), {store.get()}, s, cfg);
    for (int i = 0; i < cluster->num_compute_nodes(); ++i) {
      job.SetInput(i, ZipfInput(tuples_per_node, num_keys, z,
                                1000 + static_cast<uint64_t>(i)));
    }
    return job.Run();
  }
};

class AllStrategiesTest : public ::testing::TestWithParam<Strategy> {};

TEST_P(AllStrategiesTest, ProcessesEveryTuple) {
  TestRig rig;
  rig.LoadStore(200, KiB(4), Milliseconds(1));
  JobResult r = rig.RunStrategy(GetParam(), 500, 200, 0.8);
  EXPECT_EQ(r.tuples_processed, 1000);
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_GT(r.throughput, 0.0);
  EXPECT_EQ(r.udf_invocations, 1000);
}

INSTANTIATE_TEST_SUITE_P(Strategies, AllStrategiesTest,
                         ::testing::Values(Strategy::kNO, Strategy::kFC,
                                           Strategy::kFD, Strategy::kFR,
                                           Strategy::kCO, Strategy::kLO,
                                           Strategy::kFO),
                         [](const auto& info) {
                           return StrategyToString(info.param);
                         });

TEST(JoinJobTest, FdComputesEverythingAtDataNodes) {
  TestRig rig;
  rig.LoadStore(100, KiB(4), Milliseconds(1));
  JobResult r = rig.RunStrategy(Strategy::kFD, 300, 100, 0.5);
  EXPECT_EQ(r.computed_at_data, 600);
  EXPECT_EQ(r.bounced_to_compute, 0);
  EXPECT_EQ(r.compute_requests, 600);
  EXPECT_EQ(r.data_requests, 0);
}

TEST(JoinJobTest, FcFetchesEverything) {
  TestRig rig;
  rig.LoadStore(100, KiB(4), Milliseconds(1));
  JobResult r = rig.RunStrategy(Strategy::kFC, 300, 100, 0.5);
  EXPECT_EQ(r.data_requests, 600);
  EXPECT_EQ(r.compute_requests, 0);
  EXPECT_EQ(r.computed_at_data, 0);
}

TEST(JoinJobTest, FrSplitsRoughlyInHalf) {
  TestRig rig;
  rig.LoadStore(100, KiB(4), Milliseconds(1));
  JobResult r = rig.RunStrategy(Strategy::kFR, 1000, 100, 0.0);
  EXPECT_NEAR(static_cast<double>(r.data_requests), 1000.0, 150.0);
  EXPECT_NEAR(static_cast<double>(r.compute_requests), 1000.0, 150.0);
}

TEST(JoinJobTest, BatchingBeatsBlockingRequests) {
  // FC (batched, prefetched) must beat NO (one synchronous fetch at a
  // time) — the benefit the paper attributes to Section 7.
  TestRig rig_no, rig_fc;
  rig_no.LoadStore(100, KiB(4), Microseconds(50));
  rig_fc.LoadStore(100, KiB(4), Microseconds(50));
  JobResult no = rig_no.RunStrategy(Strategy::kNO, 400, 100, 0.5);
  JobResult fc = rig_fc.RunStrategy(Strategy::kFC, 400, 100, 0.5);
  // FC pipelines down to the disk-bound floor; NO pays a full round trip
  // per blocking worker (one per core) per tuple.
  EXPECT_LT(fc.makespan * 1.2, no.makespan);
}

TEST(JoinJobTest, SkiRentalCachesHeavyHitters) {
  TestRig rig;
  rig.LoadStore(1000, KiB(32), Milliseconds(1));
  // z=1.4: a handful of keys dominate -> FO should serve most requests
  // from cache.
  JobResult r = rig.RunStrategy(Strategy::kFO, 3000, 1000, 1.4);
  EXPECT_GT(r.cache_memory_hits + r.cache_disk_hits, 1500);
  EXPECT_EQ(r.tuples_processed, 6000);
}

TEST(JoinJobTest, NoCachingAtUniformLowTraffic) {
  TestRig rig;
  rig.LoadStore(5000, KiB(32), Milliseconds(1));
  // Uniform keys, each seen ~0.4 times per node: ski-rental buys almost
  // nothing (a few repeats may be fetched during the startup transient
  // when data-node response times are inflated), and cache hits stay
  // negligible.
  JobResult r = rig.RunStrategy(Strategy::kFO, 1000, 5000, 0.0);
  EXPECT_LT(r.data_requests, 2000 / 10);
  EXPECT_LT(r.cache_memory_hits, 2000 / 20);
}

TEST(JoinJobTest, LoadBalancerBouncesUnderComputePressure) {
  TestRig rig;
  // Compute-heavy: 20 ms UDFs, small values. LO must offload part of the
  // work back to compute nodes.
  rig.LoadStore(100, 256.0, Milliseconds(20));
  JobResult r = rig.RunStrategy(Strategy::kLO, 500, 100, 0.0);
  EXPECT_GT(r.bounced_to_compute, 50);
  EXPECT_GT(r.computed_at_data, 50);
  EXPECT_EQ(r.tuples_processed, 1000);
}

TEST(JoinJobTest, LoBeatsFdOnComputeHeavyWork) {
  TestRig rig_fd, rig_lo;
  rig_fd.LoadStore(100, 256.0, Milliseconds(20));
  rig_lo.LoadStore(100, 256.0, Milliseconds(20));
  JobResult fd = rig_fd.RunStrategy(Strategy::kFD, 500, 100, 0.0);
  JobResult lo = rig_lo.RunStrategy(Strategy::kLO, 500, 100, 0.0);
  // FD uses only the data nodes' CPUs; LO uses both sides.
  EXPECT_LT(lo.makespan, fd.makespan * 0.85);
}

TEST(JoinJobTest, MultiStagePipelineCompletes) {
  TestRig rig;
  rig.LoadStore(100, KiB(4), Milliseconds(1));
  // Second store for stage 1.
  std::vector<NodeId> data_ids, compute_ids;
  for (int j = 0; j < rig.cluster->num_data_nodes(); ++j) {
    data_ids.push_back(rig.cluster->data_node_id(j));
  }
  for (int i = 0; i < rig.cluster->num_compute_nodes(); ++i) {
    compute_ids.push_back(i);
  }
  ParallelStore store2(ParallelStoreConfig{}, data_ids, compute_ids);
  for (Key k = 0; k < 50; ++k) {
    StoredItem item;
    item.size_bytes = KiB(2);
    item.udf_cost = Milliseconds(0.5);
    store2.Put(k, item);
  }
  EngineConfig cfg;
  JoinJob job(rig.sim.get(), rig.cluster.get(), {rig.store.get(), &store2},
              Strategy::kFO, cfg);
  Rng rng(7);
  for (int i = 0; i < 2; ++i) {
    std::vector<InputTuple> input;
    for (int t = 0; t < 300; ++t) {
      InputTuple tuple;
      tuple.keys = {rng.NextBounded(100), rng.NextBounded(50)};
      input.push_back(tuple);
    }
    job.SetInput(i, std::move(input));
  }
  JobResult r = job.Run();
  EXPECT_EQ(r.tuples_processed, 600);
  // Each surviving tuple runs two UDFs.
  EXPECT_EQ(r.udf_invocations, 1200);
}

TEST(JoinJobTest, StageSelectivityFiltersTuples) {
  TestRig rig;
  rig.LoadStore(100, KiB(4), Milliseconds(1));
  std::vector<NodeId> data_ids{rig.cluster->data_node_id(0),
                               rig.cluster->data_node_id(1)};
  ParallelStore store2(ParallelStoreConfig{}, data_ids, {0, 1});
  for (Key k = 0; k < 50; ++k) {
    StoredItem item;
    item.size_bytes = KiB(2);
    item.udf_cost = Milliseconds(0.5);
    store2.Put(k, item);
  }
  EngineConfig cfg;
  cfg.stage_selectivity = {0.5, 1.0};
  JoinJob job(rig.sim.get(), rig.cluster.get(), {rig.store.get(), &store2},
              Strategy::kFC, cfg);
  Rng rng(9);
  std::vector<InputTuple> input;
  for (int t = 0; t < 2000; ++t) {
    InputTuple tuple;
    tuple.keys = {rng.NextBounded(100), rng.NextBounded(50)};
    input.push_back(tuple);
  }
  job.SetInput(0, std::move(input));
  JobResult r = job.Run();
  EXPECT_EQ(r.tuples_processed, 2000);
  // ~half the tuples run the stage-1 UDF: 2000 + ~1000 invocations.
  EXPECT_NEAR(static_cast<double>(r.udf_invocations), 3000.0, 150.0);
}

TEST(JoinJobTest, StreamingArrivalRateBoundsThroughput) {
  TestRig rig;
  rig.LoadStore(100, KiB(4), Microseconds(100));
  EngineConfig cfg;
  JoinJob job(rig.sim.get(), rig.cluster.get(), {rig.store.get()},
              Strategy::kFC, cfg);
  for (int i = 0; i < 2; ++i) {
    job.SetInput(i, rig.ZipfInput(1000, 100, 0.5, 77), /*arrival_rate=*/500.0);
  }
  JobResult r = job.Run();
  EXPECT_EQ(r.tuples_processed, 2000);
  // 1000 tuples at 500/s: the last arrives at t = 999/500 = 1.998 s, so
  // the makespan cannot beat the arrival horizon.
  EXPECT_GE(r.makespan, 1.998);
}

TEST(JoinJobTest, UpdateInvalidatesCachedValue) {
  TestRig rig(1, 1);
  rig.LoadStore(10, KiB(8), Milliseconds(1));
  EngineConfig cfg;
  JoinJob job(rig.sim.get(), rig.cluster.get(), {rig.store.get()},
              Strategy::kFO, cfg);
  // A stream hammering one key: it gets cached quickly.
  std::vector<InputTuple> input;
  for (int t = 0; t < 2000; ++t) {
    InputTuple tuple;
    tuple.keys = {3};
    input.push_back(tuple);
  }
  job.SetInput(0, std::move(input));
  // Mid-run update to the hot key.
  rig.sim->Schedule(0.05, [&job] { ASSERT_TRUE(job.ApplyUpdate(0, 3).ok()); });
  JobResult r = job.Run();
  EXPECT_EQ(r.tuples_processed, 2000);
  const DecisionEngine* engine = job.compute_runtime(0).engine(0);
  ASSERT_NE(engine, nullptr);
  EXPECT_GE(engine->stats().update_resets, 1);
}

TEST(JoinJobTest, ComputeCpuSkewLowUnderUniformKeys) {
  TestRig rig(4, 4);
  rig.LoadStore(1000, KiB(4), Milliseconds(2));
  JobResult r = rig.RunStrategy(Strategy::kFD, 500, 1000, 0.0);
  EXPECT_LT(r.data_cpu_skew, 1.5);
}

TEST(JoinJobTest, FdDataSkewHighUnderHeavyHitters) {
  TestRig rig(4, 4);
  rig.LoadStore(1000, KiB(4), Milliseconds(2));
  JobResult r = rig.RunStrategy(Strategy::kFD, 500, 1000, 1.5);
  // One data node owns the dominant key and does most of the work.
  EXPECT_GT(r.data_cpu_skew, 1.8);
}

}  // namespace
}  // namespace joinopt
