#include "joinopt/store/update_notifier.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace joinopt {
namespace {

TEST(UpdateNotifierTest, TargetedNotifiesOnlyRegistered) {
  UpdateNotifier n(NotifyMode::kTargeted, {0, 1, 2, 3});
  n.RegisterFetch(5, 1);
  n.RegisterFetch(5, 3);
  n.RegisterFetch(6, 0);
  auto notified = n.OnUpdate(5);
  std::sort(notified.begin(), notified.end());
  EXPECT_EQ(notified, (std::vector<NodeId>{1, 3}));
}

TEST(UpdateNotifierTest, TargetedUnknownKeyNotifiesNobody) {
  UpdateNotifier n(NotifyMode::kTargeted, {0, 1});
  EXPECT_TRUE(n.OnUpdate(99).empty());
}

TEST(UpdateNotifierTest, RegistrationConsumedOnUpdate) {
  UpdateNotifier n(NotifyMode::kTargeted, {0, 1});
  n.RegisterFetch(5, 1);
  EXPECT_FALSE(n.OnUpdate(5).empty());
  EXPECT_TRUE(n.OnUpdate(5).empty());
}

TEST(UpdateNotifierTest, DuplicateRegistrationDedups) {
  UpdateNotifier n(NotifyMode::kTargeted, {0, 1});
  n.RegisterFetch(5, 1);
  n.RegisterFetch(5, 1);
  EXPECT_EQ(n.OnUpdate(5).size(), 1u);
}

TEST(UpdateNotifierTest, UnregisterStopsNotification) {
  UpdateNotifier n(NotifyMode::kTargeted, {0, 1, 2});
  n.RegisterFetch(5, 1);
  n.RegisterFetch(5, 2);
  n.Unregister(5, 1);
  EXPECT_EQ(n.OnUpdate(5), (std::vector<NodeId>{2}));
}

TEST(UpdateNotifierTest, RefetchAfterInvalidationRoundTrip) {
  // The full invalidation protocol: fetch registers interest, the update
  // notifies and consumes it (the cached copy is now invalid), the node
  // re-fetches — which must re-register it — and the *next* update notifies
  // it again. A node that does not re-fetch stays silent.
  UpdateNotifier n(NotifyMode::kTargeted, {0, 1});
  n.RegisterFetch(5, 0);
  n.RegisterFetch(5, 1);
  auto first = n.OnUpdate(5);
  std::sort(first.begin(), first.end());
  ASSERT_EQ(first, (std::vector<NodeId>{0, 1}));
  n.RegisterFetch(5, 1);  // only node 1 re-fetches the new version
  EXPECT_EQ(n.OnUpdate(5), (std::vector<NodeId>{1}));
  EXPECT_TRUE(n.OnUpdate(5).empty());
}

TEST(UpdateNotifierTest, BroadcastAlwaysNotifiesEveryone) {
  UpdateNotifier n(NotifyMode::kBroadcast, {0, 1, 2});
  EXPECT_EQ(n.OnUpdate(5).size(), 3u);
  n.RegisterFetch(6, 0);  // no-op in broadcast mode
  EXPECT_EQ(n.tracked_keys(), 0u);
}

TEST(UpdateNotifierTest, TrackedKeysReflectsRegistrations) {
  UpdateNotifier n(NotifyMode::kTargeted, {0});
  n.RegisterFetch(1, 0);
  n.RegisterFetch(2, 0);
  EXPECT_EQ(n.tracked_keys(), 2u);
  n.Unregister(1, 0);
  EXPECT_EQ(n.tracked_keys(), 1u);
}

}  // namespace
}  // namespace joinopt
