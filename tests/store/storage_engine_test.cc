#include "joinopt/store/storage_engine.h"

#include <gtest/gtest.h>

namespace joinopt {
namespace {

StoredItem Item(double size, double cost = 0.01) {
  StoredItem it;
  it.size_bytes = size;
  it.udf_cost = cost;
  return it;
}

TEST(StorageEngineTest, PutThenGet) {
  StorageEngine e;
  e.Put(1, Item(100));
  auto got = e.Get(1);
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(got->size_bytes, 100.0);
  EXPECT_EQ(got->version, 1u);
}

TEST(StorageEngineTest, GetMissingIsNotFound) {
  StorageEngine e;
  EXPECT_TRUE(e.Get(42).status().IsNotFound());
  EXPECT_EQ(e.Find(42), nullptr);
}

TEST(StorageEngineTest, ReplaceBumpsVersion) {
  StorageEngine e;
  e.Put(1, Item(100));
  e.Put(1, Item(200));
  auto got = e.Get(1);
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(got->size_bytes, 200.0);
  EXPECT_EQ(got->version, 2u);
}

TEST(StorageEngineTest, TotalBytesTracksContents) {
  StorageEngine e;
  e.Put(1, Item(100));
  e.Put(2, Item(50));
  EXPECT_DOUBLE_EQ(e.total_bytes(), 150.0);
  e.Put(1, Item(10));  // replace
  EXPECT_DOUBLE_EQ(e.total_bytes(), 60.0);
  ASSERT_TRUE(e.Delete(2).ok());
  EXPECT_DOUBLE_EQ(e.total_bytes(), 10.0);
}

TEST(StorageEngineTest, UpdateMutatesAndBumpsVersion) {
  StorageEngine e;
  e.Put(1, Item(100));
  auto v = e.Update(1, [](StoredItem& it) { it.size_bytes = 300; });
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 2u);
  EXPECT_DOUBLE_EQ(e.Get(1)->size_bytes, 300.0);
  EXPECT_DOUBLE_EQ(e.total_bytes(), 300.0);
}

TEST(StorageEngineTest, UpdateMissingFails) {
  StorageEngine e;
  EXPECT_TRUE(e.Update(9, [](StoredItem&) {}).status().IsNotFound());
}

TEST(StorageEngineTest, DeleteMissingFails) {
  StorageEngine e;
  EXPECT_TRUE(e.Delete(9).IsNotFound());
}

TEST(StorageEngineTest, PayloadRoundTrips) {
  StorageEngine e;
  StoredItem it;
  it.payload = "model-bytes";
  it.size_bytes = static_cast<double>(it.payload.size());
  e.Put(7, it);
  EXPECT_EQ(e.Get(7)->payload, "model-bytes");
}

TEST(StorageEngineTest, ForEachVisitsAll) {
  StorageEngine e;
  for (Key k = 0; k < 10; ++k) e.Put(k, Item(1));
  int visited = 0;
  double bytes = 0;
  e.ForEach([&](Key, const StoredItem& it) {
    ++visited;
    bytes += it.size_bytes;
  });
  EXPECT_EQ(visited, 10);
  EXPECT_DOUBLE_EQ(bytes, 10.0);
}

TEST(StorageEngineTest, CountsAccesses) {
  StorageEngine e;
  e.Put(1, Item(1));
  e.Get(1);
  e.Find(1);
  e.Get(2);
  EXPECT_EQ(e.gets(), 3);
  EXPECT_EQ(e.puts(), 1);
}

}  // namespace
}  // namespace joinopt
