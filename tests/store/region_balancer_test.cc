#include "joinopt/store/region_balancer.h"

#include <gtest/gtest.h>

#include "joinopt/common/random.h"

namespace joinopt {
namespace {

TEST(RegionBalancerTest, BalancedMapNeedsNoMoves) {
  RegionMap regions(8, {0, 1});
  std::vector<double> load(8, 10.0);  // round-robin: 40/40
  RegionBalancer balancer;
  EXPECT_TRUE(balancer.PlanMoves(regions, load).empty());
  EXPECT_NEAR(RegionBalancer::Imbalance(regions, load), 1.0, 1e-9);
}

TEST(RegionBalancerTest, MovesHotRegionToColdNode) {
  RegionMap regions(4, {0, 1});  // node 0: regions 0,2; node 1: 1,3
  std::vector<double> load = {100.0, 5.0, 20.0, 5.0};  // node 0: 120, node 1: 10
  RegionBalancer balancer;
  auto moves = balancer.Rebalance(regions, load);
  ASSERT_FALSE(moves.empty());
  double after = RegionBalancer::Imbalance(regions, load);
  EXPECT_LT(after, 120.0 / 65.0);  // strictly better than before
  // Region 20 moved (region 100 exceeds the gap and would overshoot... the
  // planner may move either as long as imbalance shrinks).
  for (const auto& m : moves) {
    EXPECT_EQ(m.from, 0);
    EXPECT_EQ(m.to, 1);
  }
}

TEST(RegionBalancerTest, PlanDoesNotMutateMap) {
  RegionMap regions(4, {0, 1});
  std::vector<double> load = {100.0, 1.0, 50.0, 1.0};
  RegionBalancer balancer;
  NodeId owner_before = regions.RegionOwner(2);
  auto moves = balancer.PlanMoves(regions, load);
  EXPECT_EQ(regions.RegionOwner(2), owner_before);
  EXPECT_FALSE(moves.empty());
}

TEST(RegionBalancerTest, RespectsMaxMoves) {
  RegionBalancerConfig cfg;
  cfg.max_moves = 1;
  RegionBalancer balancer(cfg);
  RegionMap regions(16, {0, 1, 2, 3});
  std::vector<double> load(16, 1.0);
  for (int r = 0; r < 16; r += 4) load[r] = 50.0;  // node 0 very hot
  EXPECT_LE(balancer.Rebalance(regions, load).size(), 1u);
}

TEST(RegionBalancerTest, ConvergesOnRandomLoads) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    RegionMap regions(40, {0, 1, 2, 3, 4});
    std::vector<double> load(40);
    for (auto& l : load) l = rng.Pareto(1.2, 1.0);
    RegionBalancer balancer;
    double before = RegionBalancer::Imbalance(regions, load);
    balancer.Rebalance(regions, load);
    double after = RegionBalancer::Imbalance(regions, load);
    EXPECT_LE(after, before + 1e-9) << "trial " << trial;
    // Re-running on the already-balanced assignment is near-idempotent.
    auto again = balancer.Rebalance(regions, load);
    double final_imbalance = RegionBalancer::Imbalance(regions, load);
    EXPECT_LE(final_imbalance, after + 1e-9);
  }
}

TEST(RegionBalancerTest, HugeSingleRegionCannotBeSplit) {
  // One region carries all the load: no move helps (its load exceeds any
  // gap), so the balancer must do nothing rather than thrash.
  RegionMap regions(4, {0, 1});
  std::vector<double> load = {1000.0, 0.0, 0.0, 0.0};
  RegionBalancer balancer;
  EXPECT_TRUE(balancer.Rebalance(regions, load).empty());
}

}  // namespace
}  // namespace joinopt
