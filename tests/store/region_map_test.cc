#include "joinopt/store/region_map.h"

#include <gtest/gtest.h>

#include <map>

namespace joinopt {
namespace {

TEST(RegionMapTest, RoundRobinAssignment) {
  RegionMap rm(6, {10, 11, 12});
  EXPECT_EQ(rm.RegionOwner(0), 10);
  EXPECT_EQ(rm.RegionOwner(1), 11);
  EXPECT_EQ(rm.RegionOwner(2), 12);
  EXPECT_EQ(rm.RegionOwner(3), 10);
}

TEST(RegionMapTest, OwnerIsStable) {
  RegionMap rm(8, {1, 2});
  for (Key k = 0; k < 100; ++k) {
    EXPECT_EQ(rm.OwnerOf(k), rm.OwnerOf(k));
    EXPECT_EQ(rm.RegionOwner(rm.RegionOf(k)), rm.OwnerOf(k));
  }
}

TEST(RegionMapTest, KeysSpreadAcrossNodes) {
  RegionMap rm(40, {0, 1, 2, 3});
  std::map<NodeId, int> counts;
  for (Key k = 0; k < 40000; ++k) ++counts[rm.OwnerOf(k)];
  for (const auto& [node, count] : counts) {
    EXPECT_NEAR(count, 10000, 2500) << "node " << node;
  }
}

TEST(RegionMapTest, MoveRegionRehomesKeys) {
  RegionMap rm(4, {1, 2});
  // Find a key in region 0 (owned by node 1).
  Key k = 0;
  while (rm.RegionOf(k) != 0) ++k;
  ASSERT_EQ(rm.OwnerOf(k), 1);
  ASSERT_TRUE(rm.MoveRegion(0, 2).ok());
  EXPECT_EQ(rm.OwnerOf(k), 2);
}

TEST(RegionMapTest, MoveRegionValidatesInputs) {
  RegionMap rm(4, {1, 2});
  EXPECT_TRUE(rm.MoveRegion(-1, 1).code() == StatusCode::kOutOfRange);
  EXPECT_TRUE(rm.MoveRegion(4, 1).code() == StatusCode::kOutOfRange);
  EXPECT_TRUE(rm.MoveRegion(0, 99).IsInvalidArgument());
}

TEST(RegionMapTest, ReplicationAssignsDistinctChainedHosts) {
  RegionMap rm(6, {10, 11, 12}, /*replication_factor=*/2);
  EXPECT_EQ(rm.replication_factor(), 2);
  for (int r = 0; r < 6; ++r) {
    const std::vector<NodeId>& replicas = rm.RegionReplicas(r);
    ASSERT_EQ(replicas.size(), 2u);
    EXPECT_NE(replicas[0], replicas[1]);
    EXPECT_EQ(replicas[0], rm.RegionOwner(r));  // primary first
  }
  // Chained placement: region r's follower is the next node round-robin.
  EXPECT_EQ(rm.RegionReplicas(0), (std::vector<NodeId>{10, 11}));
  EXPECT_EQ(rm.RegionReplicas(2), (std::vector<NodeId>{12, 10}));
}

TEST(RegionMapTest, ReplicationFactorClampedToNodeCount) {
  RegionMap rm(4, {1, 2}, /*replication_factor=*/5);
  EXPECT_EQ(rm.replication_factor(), 2);
  EXPECT_EQ(rm.RegionReplicas(0).size(), 2u);
}

TEST(RegionMapTest, DefaultReplicationMatchesUnreplicatedAssignment) {
  // R=1 must be bit-for-bit the old single-copy layout.
  RegionMap old_style(40, {0, 1, 2, 3});
  RegionMap replicated(40, {0, 1, 2, 3}, 1);
  for (Key k = 0; k < 4000; ++k) {
    EXPECT_EQ(old_style.OwnerOf(k), replicated.OwnerOf(k));
    EXPECT_EQ(replicated.ReplicasOf(k).size(), 1u);
  }
}

TEST(RegionMapTest, MoveRegionPromotesExistingFollower) {
  RegionMap rm(4, {1, 2, 3}, /*replication_factor=*/2);
  // Region 0: replicas {1, 2}. Moving to the follower swaps roles.
  ASSERT_EQ(rm.RegionReplicas(0), (std::vector<NodeId>{1, 2}));
  ASSERT_TRUE(rm.MoveRegion(0, 2).ok());
  EXPECT_EQ(rm.RegionReplicas(0), (std::vector<NodeId>{2, 1}));
  // Moving to a node not in the replica set replaces the primary.
  ASSERT_TRUE(rm.MoveRegion(0, 3).ok());
  EXPECT_EQ(rm.RegionReplicas(0), (std::vector<NodeId>{3, 1}));
}

TEST(RegionMapTest, RegionsOfListsHostedRegions) {
  RegionMap rm(4, {1, 2});
  EXPECT_EQ(rm.RegionsOf(1), (std::vector<int>{0, 2}));
  EXPECT_EQ(rm.RegionsOf(2), (std::vector<int>{1, 3}));
  ASSERT_TRUE(rm.MoveRegion(1, 1).ok());
  EXPECT_EQ(rm.RegionsOf(1), (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace joinopt
