#include "joinopt/store/parallel_store.h"

#include <gtest/gtest.h>

namespace joinopt {
namespace {

ParallelStore MakeStore() {
  ParallelStoreConfig cfg;
  cfg.regions_per_node = 4;
  return ParallelStore(cfg, /*data nodes=*/{10, 11, 12},
                       /*compute nodes=*/{0, 1});
}

StoredItem Item(double size) {
  StoredItem it;
  it.size_bytes = size;
  return it;
}

TEST(ParallelStoreTest, PutLandsOnOwner) {
  ParallelStore store = MakeStore();
  for (Key k = 0; k < 100; ++k) store.Put(k, Item(10));
  EXPECT_EQ(store.total_items(), 100u);
  for (Key k = 0; k < 100; ++k) {
    NodeId owner = store.OwnerOf(k);
    EXPECT_TRUE(store.engine(owner).Contains(k));
  }
}

TEST(ParallelStoreTest, GetRoutesToOwner) {
  ParallelStore store = MakeStore();
  store.Put(5, Item(123));
  auto got = store.Get(5);
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(got->size_bytes, 123.0);
  EXPECT_TRUE(store.Get(999).status().IsNotFound());
}

TEST(ParallelStoreTest, DataSpreadsOverNodes) {
  ParallelStore store = MakeStore();
  for (Key k = 0; k < 3000; ++k) store.Put(k, Item(1));
  for (NodeId n : {10, 11, 12}) {
    EXPECT_GT(store.engine(n).size(), 500u) << "node " << n;
  }
}

TEST(ParallelStoreTest, UpdateBumpsVersionAndNotifies) {
  ParallelStore store = MakeStore();
  store.Put(7, Item(10));
  store.RegisterFetch(7, /*compute node=*/0);
  store.RegisterFetch(7, /*compute node=*/1);
  auto result = store.Update(7, [](StoredItem& it) { it.size_bytes = 20; });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->new_version, 2u);
  EXPECT_EQ(result->notify.size(), 2u);
  // Registration is consumed: a second update notifies nobody.
  auto again = store.Update(7, [](StoredItem& it) { it.size_bytes = 30; });
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->notify.empty());
}

TEST(ParallelStoreTest, UpdateMissingKeyFails) {
  ParallelStore store = MakeStore();
  EXPECT_TRUE(store.Update(1, [](StoredItem&) {}).status().IsNotFound());
}

TEST(ParallelStoreTest, BroadcastModeNotifiesEveryComputeNode) {
  ParallelStoreConfig cfg;
  cfg.notify_mode = NotifyMode::kBroadcast;
  ParallelStore store(cfg, {10}, {0, 1, 2});
  store.Put(1, Item(5));
  auto result = store.Update(1, [](StoredItem&) {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->notify.size(), 3u);
}

TEST(ParallelStoreTest, TotalBytesAggregates) {
  ParallelStore store = MakeStore();
  store.Put(1, Item(100));
  store.Put(2, Item(200));
  EXPECT_DOUBLE_EQ(store.total_bytes(), 300.0);
}

TEST(ParallelStoreTest, ReplicatedPutReachesEveryReplica) {
  ParallelStoreConfig cfg;
  cfg.regions_per_node = 4;
  cfg.replication_factor = 2;
  ParallelStore store(cfg, {10, 11, 12}, {0});
  for (Key k = 0; k < 200; ++k) store.Put(k, Item(10));
  for (Key k = 0; k < 200; ++k) {
    const std::vector<NodeId>& replicas = store.ReplicasOf(k);
    ASSERT_EQ(replicas.size(), 2u);
    for (NodeId n : replicas) {
      EXPECT_TRUE(store.engine(n).Contains(k)) << "key " << k;
    }
  }
  // Two full copies of every item.
  EXPECT_EQ(store.total_items(), 400u);
}

TEST(ParallelStoreTest, ReplicatedUpdateKeepsVersionsInLockstep) {
  ParallelStoreConfig cfg;
  cfg.replication_factor = 2;
  ParallelStore store(cfg, {10, 11}, {0});
  store.Put(7, Item(10));
  auto r1 = store.Update(7, [](StoredItem& it) { it.size_bytes = 20; });
  ASSERT_TRUE(r1.ok());
  auto r2 = store.Update(7, [](StoredItem& it) { it.size_bytes = 30; });
  ASSERT_TRUE(r2.ok());
  const std::vector<NodeId>& replicas = store.ReplicasOf(7);
  ASSERT_EQ(replicas.size(), 2u);
  // A failover read must observe the same version and bytes the primary
  // would have served.
  const StoredItem* primary = store.engine(replicas[0]).Find(7);
  const StoredItem* follower = store.engine(replicas[1]).Find(7);
  ASSERT_NE(primary, nullptr);
  ASSERT_NE(follower, nullptr);
  EXPECT_EQ(primary->version, r2->new_version);
  EXPECT_EQ(follower->version, primary->version);
  EXPECT_DOUBLE_EQ(follower->size_bytes, primary->size_bytes);
}

TEST(ParallelStoreTest, RegionMoveRehomesData) {
  // Region moves change ownership for *future* placement; the facade's
  // OwnerOf must agree with the region map at all times.
  ParallelStore store = MakeStore();
  Key k = 3;
  NodeId before = store.OwnerOf(k);
  int region = store.regions().RegionOf(k);
  NodeId target = before == 10 ? 11 : 10;
  ASSERT_TRUE(store.regions().MoveRegion(region, target).ok());
  EXPECT_EQ(store.OwnerOf(k), target);
}

}  // namespace
}  // namespace joinopt
