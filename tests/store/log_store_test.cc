#include "joinopt/store/log_store.h"

#include <gtest/gtest.h>

#include <map>

#include "joinopt/common/random.h"

namespace joinopt {
namespace {

LogStoreConfig SmallSegments() {
  LogStoreConfig cfg;
  cfg.segment_bytes = 1024;  // force frequent sealing
  return cfg;
}

TEST(LogStoreTest, PutGetRoundTrip) {
  LogStructuredStore store;
  EXPECT_EQ(store.Put(1, "hello"), 1u);
  auto got = store.Get(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "hello");
  EXPECT_TRUE(store.Contains(1));
  EXPECT_EQ(store.VersionOf(1), 1u);
}

TEST(LogStoreTest, GetMissingIsNotFound) {
  LogStructuredStore store;
  EXPECT_TRUE(store.Get(42).status().IsNotFound());
  EXPECT_EQ(store.VersionOf(42), 0u);
}

TEST(LogStoreTest, OverwriteBumpsVersionAndReadsLatest) {
  LogStructuredStore store;
  store.Put(1, "v1");
  EXPECT_EQ(store.Put(1, "v2"), 2u);
  EXPECT_EQ(*store.Get(1), "v2");
  EXPECT_EQ(store.size(), 1u);
}

TEST(LogStoreTest, DeleteWritesTombstone) {
  LogStructuredStore store;
  store.Put(1, "x");
  ASSERT_TRUE(store.Delete(1).ok());
  EXPECT_FALSE(store.Contains(1));
  EXPECT_TRUE(store.Get(1).status().IsNotFound());
  EXPECT_TRUE(store.Delete(1).IsNotFound());
  // Re-insert after delete works and continues the version chain upward.
  uint64_t v = store.Put(1, "y");
  EXPECT_GE(v, 1u);
  EXPECT_EQ(*store.Get(1), "y");
}

TEST(LogStoreTest, SegmentsSealAsTheyFill) {
  LogStructuredStore store(SmallSegments());
  for (Key k = 0; k < 100; ++k) store.Put(k, std::string(100, 'a'));
  EXPECT_GT(store.stats().segments, 3u);
  for (Key k = 0; k < 100; ++k) {
    ASSERT_TRUE(store.Get(k).ok()) << k;
  }
}

TEST(LogStoreTest, CompactionReclaimsGarbage) {
  LogStoreConfig cfg = SmallSegments();
  cfg.auto_compact = false;
  LogStructuredStore store(cfg);
  // Overwrite the same keys repeatedly: mostly garbage.
  for (int round = 0; round < 20; ++round) {
    for (Key k = 0; k < 10; ++k) {
      store.Put(k, "round-" + std::to_string(round));
    }
  }
  size_t before = store.stats().total_bytes;
  int compacted = store.CompactNow();
  EXPECT_GT(compacted, 0);
  size_t after = store.stats().total_bytes;
  EXPECT_LT(after, before / 2);
  // Liveness preserved.
  for (Key k = 0; k < 10; ++k) {
    EXPECT_EQ(*store.Get(k), "round-19");
  }
}

TEST(LogStoreTest, AutoCompactionKeepsFootprintBounded) {
  LogStructuredStore store(SmallSegments());
  for (int round = 0; round < 200; ++round) {
    store.Put(7, std::string(64, static_cast<char>('a' + round % 26)));
  }
  LogStoreStats s = store.stats();
  EXPECT_GT(s.compactions, 0);
  // One live 64-byte value; the log must not retain 200 copies.
  EXPECT_LT(s.total_bytes, 200 * 88 / 4);
}

TEST(LogStoreTest, SegmentSlotsAreReusedUnderOverwriteChurn) {
  // Sustained overwrite load churns through many segment fills; compaction
  // must return drained segments to the pool, not leave them as husks.
  // The regression this pins: segments_ once grew with bytes EVER written
  // (a compacted segment stayed allocated forever, record-vector capacity
  // included), so a chaos soak leaked memory at the put rate even though
  // total_bytes looked flat.
  LogStructuredStore store(SmallSegments());
  for (int round = 0; round < 500; ++round) {
    for (Key k = 0; k < 16; ++k) {
      store.Put(k, std::string(64, static_cast<char>('a' + round % 26)));
    }
  }
  LogStoreStats s = store.stats();
  EXPECT_EQ(s.live_keys, 16u);
  // 8000 puts filled ~700 one-KB segments; live data fits in ~2. The
  // allocated segment count must track the LIVE footprint (plus compaction
  // slack), not the write history.
  EXPECT_LE(s.segments, 10u) << "drained segments are not being reused";
  for (Key k = 0; k < 16; ++k) {
    ASSERT_TRUE(store.Get(k).ok()) << k;
  }
}

TEST(LogStoreTest, RecoveryRebuildsIdenticalIndex) {
  LogStructuredStore store(SmallSegments());
  Rng rng(5);
  std::map<Key, std::string> model;
  for (int op = 0; op < 2000; ++op) {
    Key k = rng.NextBounded(50);
    if (rng.Bernoulli(0.2) && model.count(k)) {
      ASSERT_TRUE(store.Delete(k).ok());
      model.erase(k);
    } else {
      std::string v = "v" + std::to_string(op);
      store.Put(k, v);
      model[k] = v;
    }
  }
  store.RecoverIndex();  // simulate restart: replay the log
  EXPECT_EQ(store.size(), model.size());
  for (const auto& [k, v] : model) {
    auto got = store.Get(k);
    ASSERT_TRUE(got.ok()) << k;
    EXPECT_EQ(*got, v);
  }
}

TEST(LogStoreTest, ForEachVisitsLiveRecordsOnly) {
  LogStructuredStore store;
  store.Put(1, "a");
  store.Put(2, "b");
  store.Put(1, "a2");
  ASSERT_TRUE(store.Delete(2).ok());
  int visited = 0;
  store.ForEach([&](Key k, const std::string& v) {
    ++visited;
    EXPECT_EQ(k, 1u);
    EXPECT_EQ(v, "a2");
  });
  EXPECT_EQ(visited, 1);
}

TEST(LogStoreTest, RandomizedAgainstReferenceModel) {
  LogStructuredStore store(SmallSegments());
  Rng rng(11);
  std::map<Key, std::string> model;
  for (int op = 0; op < 5000; ++op) {
    Key k = rng.NextBounded(200);
    switch (rng.NextBounded(4)) {
      case 0:
      case 1: {
        std::string v(1 + rng.NextBounded(100), 'x');
        store.Put(k, v);
        model[k] = v;
        break;
      }
      case 2:
        if (model.count(k)) {
          ASSERT_TRUE(store.Delete(k).ok());
          model.erase(k);
        } else {
          EXPECT_TRUE(store.Delete(k).IsNotFound());
        }
        break;
      case 3: {
        auto got = store.Get(k);
        if (model.count(k)) {
          ASSERT_TRUE(got.ok());
          EXPECT_EQ(*got, model[k]);
        } else {
          EXPECT_TRUE(got.status().IsNotFound());
        }
        break;
      }
    }
  }
  EXPECT_EQ(store.size(), model.size());
}

}  // namespace
}  // namespace joinopt
