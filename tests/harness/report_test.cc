#include "joinopt/harness/report.h"

#include <gtest/gtest.h>

namespace joinopt {
namespace {

TEST(ReportTableTest, AlignsColumns) {
  ReportTable t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer-name", "2.5"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(ReportTableTest, NumericRowFormatsPrecision) {
  ReportTable t({"strategy", "z=0", "z=1"});
  t.AddNumericRow("FO", {1.0, 2.34567}, 2);
  std::string s = t.ToString();
  EXPECT_NE(s.find("1.00"), std::string::npos);
  EXPECT_NE(s.find("2.35"), std::string::npos);
}

TEST(ReportTableTest, HandlesRaggedRows) {
  ReportTable t({"a"});
  t.AddRow({"x", "y", "z"});
  EXPECT_NO_THROW(t.ToString());
}

TEST(NormalizeTest, NormalizeByBaseline) {
  auto out = NormalizeBy({2.0, 4.0, 1.0}, 2.0);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  EXPECT_DOUBLE_EQ(out[2], 0.5);
}

TEST(NormalizeTest, InverseForThroughput) {
  auto out = InverseNormalizeBy({2.0, 0.5}, 1.0);
  EXPECT_DOUBLE_EQ(out[0], 0.5);  // took twice as long -> half throughput
  EXPECT_DOUBLE_EQ(out[1], 2.0);
}

TEST(NormalizeTest, ZeroBaselinesSafe) {
  EXPECT_DOUBLE_EQ(NormalizeBy({1.0}, 0.0)[0], 0.0);
  EXPECT_DOUBLE_EQ(InverseNormalizeBy({0.0}, 1.0)[0], 0.0);
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

}  // namespace
}  // namespace joinopt
