#include "joinopt/harness/runner.h"

#include <gtest/gtest.h>

#include "joinopt/stream/muppet.h"
#include "joinopt/workload/synthetic.h"

namespace joinopt {
namespace {

FrameworkRunConfig SmallRun() {
  FrameworkRunConfig cfg;
  cfg.cluster.num_compute_nodes = 3;
  cfg.cluster.num_data_nodes = 3;
  cfg.cluster.machine.cores = 4;
  return cfg;
}

GeneratedWorkload SmallWorkload(double z = 0.5) {
  SyntheticConfig cfg;
  cfg.kind = SyntheticKind::kDataHeavy;
  cfg.zipf_z = z;
  cfg.tuples_per_node = 400;
  cfg.num_keys = 1000;
  return MakeSyntheticWorkload(cfg, NodeLayout::Of(3, 3));
}

TEST(RunnerTest, FrameworkRunProcessesWholeWorkload) {
  GeneratedWorkload w = SmallWorkload();
  JobResult r = RunFrameworkJob(w, Strategy::kFO, SmallRun());
  EXPECT_EQ(r.tuples_processed, w.total_tuples());
  EXPECT_GT(r.throughput, 0.0);
}

TEST(RunnerTest, RunsAreIndependentAndDeterministic) {
  GeneratedWorkload w = SmallWorkload();
  JobResult a = RunFrameworkJob(w, Strategy::kFO, SmallRun());
  JobResult b = RunFrameworkJob(w, Strategy::kFO, SmallRun());
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_DOUBLE_EQ(a.network_bytes, b.network_bytes);
}

TEST(RunnerTest, WorkloadReusableAcrossStrategies) {
  GeneratedWorkload w = SmallWorkload();
  JobResult fd = RunFrameworkJob(w, Strategy::kFD, SmallRun());
  JobResult fc = RunFrameworkJob(w, Strategy::kFC, SmallRun());
  EXPECT_EQ(fd.tuples_processed, fc.tuples_processed);
  // And a re-run of the first strategy still agrees (no state leaked into
  // the shared stores).
  JobResult fd2 = RunFrameworkJob(w, Strategy::kFD, SmallRun());
  EXPECT_DOUBLE_EQ(fd.makespan, fd2.makespan);
}

TEST(RunnerTest, MuppetStreamReportsThroughputs) {
  GeneratedWorkload w = SmallWorkload();
  MuppetRunResult r =
      RunMuppetStream(w, Strategy::kFC, SmallRun(), /*documents=*/600);
  EXPECT_GT(r.items_per_second, 0.0);
  EXPECT_NEAR(r.documents_per_second,
              r.items_per_second * 600.0 /
                  static_cast<double>(w.total_tuples()),
              1e-9);
}

}  // namespace
}  // namespace joinopt
