#include "joinopt/harness/trace.h"

#include <gtest/gtest.h>

namespace joinopt {
namespace {

TEST(TracerTest, SamplesGaugesOnSchedule) {
  Simulation sim;
  double value = 0.0;
  // Background activity so the tracer has something to trace.
  for (int i = 1; i <= 10; ++i) {
    sim.Schedule(i * 0.1, [&value, i] { value = i; });
  }
  Tracer tracer(&sim, 0.25);
  tracer.AddGauge("value", [&value] { return value; });
  tracer.Start();
  sim.Run();
  ASSERT_GE(tracer.num_samples(), 4u);
  EXPECT_DOUBLE_EQ(tracer.time_at(0), 0.0);
  EXPECT_DOUBLE_EQ(tracer.value_at(0, 0), 0.0);
  // At t=0.5 the last event was i=5 (t=0.5 event runs before the sampler
  // scheduled at the same time? — sampler was scheduled at 0.25 increments;
  // at t=0.5 the i=5 event (seq earlier) may tie; accept 4 or 5.
  EXPECT_GE(tracer.value_at(2, 0), 4.0);
}

TEST(TracerTest, StopsWhenSimulationDrains) {
  Simulation sim;
  sim.Schedule(1.0, [] {});
  Tracer tracer(&sim, 0.5);
  tracer.AddGauge("g", [] { return 1.0; });
  tracer.Start();
  sim.Run();  // must terminate despite the self-rescheduling tracer
  EXPECT_LE(tracer.num_samples(), 5u);
}

TEST(TracerTest, ExplicitStopHalts) {
  Simulation sim;
  for (int i = 1; i < 100; ++i) sim.Schedule(i * 1.0, [] {});
  Tracer tracer(&sim, 1.0);
  tracer.AddGauge("g", [] { return 2.0; });
  tracer.Start();
  sim.Schedule(5.0, [&tracer] { tracer.Stop(); });
  sim.Run();
  EXPECT_LE(tracer.num_samples(), 7u);
}

TEST(TracerTest, DoubleStartDoesNotForkSamplingChain) {
  // A second Start() while sampling is live must be a no-op; it used to
  // fork a second sampling chain and double every sample from then on.
  Simulation sim;
  for (int i = 1; i <= 8; ++i) sim.Schedule(i * 1.0, [] {});
  Tracer tracer(&sim, 1.0);
  tracer.AddGauge("g", [] { return 1.0; });
  tracer.Start();
  tracer.Start();  // immediate double start
  sim.Schedule(3.0, [&tracer] { tracer.Start(); });  // mid-run double start
  sim.Run();
  // One sample per interval tick: strictly increasing times, no duplicates.
  for (size_t s = 1; s < tracer.num_samples(); ++s) {
    EXPECT_GT(tracer.time_at(s), tracer.time_at(s - 1));
  }
  EXPECT_LE(tracer.num_samples(), 10u);
}

TEST(TracerTest, RestartAfterDrainResumesSampling) {
  Simulation sim;
  sim.Schedule(1.0, [] {});
  Tracer tracer(&sim, 0.5);
  tracer.AddGauge("g", [] { return 1.0; });
  tracer.Start();
  sim.Run();
  size_t first_batch = tracer.num_samples();
  ASSERT_GE(first_batch, 1u);
  // The chain ended when the sim drained; a fresh Start() must work.
  sim.Schedule(1.0, [] {});
  tracer.Start();
  sim.Run();
  EXPECT_GT(tracer.num_samples(), first_batch);
}

TEST(TracerTest, CsvHasHeaderAndRows) {
  Simulation sim;
  sim.Schedule(0.2, [] {});
  Tracer tracer(&sim, 0.1);
  tracer.AddGauge("queue", [] { return 3.5; });
  tracer.AddGauge("hits", [] { return 7.0; });
  tracer.Start();
  sim.Run();
  std::string csv = tracer.ToCsv();
  EXPECT_NE(csv.find("time,queue,hits"), std::string::npos);
  EXPECT_NE(csv.find("3.5,7"), std::string::npos);
}

TEST(TracerTest, MultipleGaugeColumnsAligned) {
  Simulation sim;
  int ticks = 0;
  for (int i = 1; i <= 4; ++i) {
    sim.Schedule(i * 1.0, [&ticks] { ++ticks; });
  }
  Tracer tracer(&sim, 1.0);
  tracer.AddGauge("ticks", [&ticks] { return ticks; });
  tracer.AddGauge("twice", [&ticks] { return 2.0 * ticks; });
  tracer.Start();
  sim.Run();
  for (size_t s = 0; s < tracer.num_samples(); ++s) {
    EXPECT_DOUBLE_EQ(tracer.value_at(s, 1), 2.0 * tracer.value_at(s, 0));
  }
}

}  // namespace
}  // namespace joinopt
