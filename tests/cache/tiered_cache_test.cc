#include "joinopt/cache/tiered_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "joinopt/common/random.h"

namespace joinopt {
namespace {

TieredCacheConfig SmallConfig(double mem = 100.0,
                              double disk = std::numeric_limits<double>::infinity(),
                              bool uniform = false) {
  TieredCacheConfig c;
  c.memory_capacity_bytes = mem;
  c.disk_capacity_bytes = disk;
  c.uniform_item_size = uniform;
  return c;
}

class TieredCacheTest : public ::testing::Test {
 protected:
  LfuDaPolicy policy_;
};

TEST_F(TieredCacheTest, MissOnEmpty) {
  TieredCache cache(SmallConfig(), &policy_);
  EXPECT_EQ(cache.Lookup(1), CacheTier::kNone);
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST_F(TieredCacheTest, InsertIntoFreeMemory) {
  TieredCache cache(SmallConfig(), &policy_);
  EXPECT_TRUE(cache.CondCacheInMemory(1, 40.0, 1.0, /*insert=*/true));
  EXPECT_EQ(cache.Lookup(1), CacheTier::kMemory);
  EXPECT_DOUBLE_EQ(cache.memory_used(), 40.0);
}

TEST_F(TieredCacheTest, DecisionOnlyDoesNotInsert) {
  TieredCache cache(SmallConfig(), &policy_);
  EXPECT_TRUE(cache.CondCacheInMemory(1, 40.0, 1.0, /*insert=*/false));
  EXPECT_EQ(cache.Peek(1), CacheTier::kNone);
}

TEST_F(TieredCacheTest, LowBenefitNewcomerRejectedWhenFull) {
  TieredCache cache(SmallConfig(100.0), &policy_);
  cache.CondCacheInMemory(1, 60.0, 10.0, true);
  cache.CondCacheInMemory(2, 40.0, 10.0, true);
  // Memory full; newcomer with lower benefit than everything resident.
  EXPECT_FALSE(cache.CondCacheInMemory(3, 50.0, 1.0, true));
  EXPECT_EQ(cache.Peek(3), CacheTier::kNone);
  EXPECT_GT(cache.stats().admission_rejections, 0);
}

TEST_F(TieredCacheTest, HighBenefitNewcomerDemotesVictims) {
  TieredCache cache(SmallConfig(100.0), &policy_);
  cache.CondCacheInMemory(1, 60.0, 1.0, true);
  cache.CondCacheInMemory(2, 40.0, 5.0, true);
  EXPECT_TRUE(cache.CondCacheInMemory(3, 60.0, 100.0, true));
  EXPECT_EQ(cache.Peek(3), CacheTier::kMemory);
  EXPECT_EQ(cache.Peek(1), CacheTier::kDisk);  // least benefit demoted
  EXPECT_EQ(cache.Peek(2), CacheTier::kMemory);
  EXPECT_EQ(cache.stats().demotions, 1);
}

TEST_F(TieredCacheTest, VariableSizeEvictsMultipleVictims) {
  TieredCache cache(SmallConfig(100.0), &policy_);
  cache.CondCacheInMemory(1, 30.0, 1.0, true);
  cache.CondCacheInMemory(2, 30.0, 2.0, true);
  cache.CondCacheInMemory(3, 30.0, 3.0, true);
  // Needs 90 bytes free: the gather pass collects all three victims (after
  // two, only 70 bytes would be free), and the 10-byte slack left once the
  // newcomer is placed cannot retain any 30-byte item.
  EXPECT_TRUE(cache.CondCacheInMemory(4, 90.0, 100.0, true));
  EXPECT_EQ(cache.Peek(4), CacheTier::kMemory);
  EXPECT_EQ(cache.Peek(1), CacheTier::kDisk);
  EXPECT_EQ(cache.Peek(2), CacheTier::kDisk);
  EXPECT_EQ(cache.Peek(3), CacheTier::kDisk);
  EXPECT_EQ(cache.stats().demotions, 3);
}

TEST_F(TieredCacheTest, BenefitSumBlocksAdmission) {
  TieredCache cache(SmallConfig(100.0), &policy_);
  cache.CondCacheInMemory(1, 50.0, 40.0, true);
  cache.CondCacheInMemory(2, 50.0, 40.0, true);
  // Newcomer benefit 50 < 80 (sum of both victims): rejected.
  EXPECT_FALSE(cache.CondCacheInMemory(3, 100.0, 50.0, true));
  // Newcomer benefit 90 > 80: admitted.
  EXPECT_TRUE(cache.CondCacheInMemory(3, 100.0, 90.0, true));
  EXPECT_EQ(cache.Peek(1), CacheTier::kDisk);
  EXPECT_EQ(cache.Peek(2), CacheTier::kDisk);
}

TEST_F(TieredCacheTest, KeepsBackHighestBenefitGatheredItems) {
  // Algorithm 3's retainment: gathering may over-collect; the best of the
  // gathered set that still fits must survive.
  TieredCache cache(SmallConfig(100.0), &policy_);
  cache.CondCacheInMemory(1, 50.0, 1.0, true);
  cache.CondCacheInMemory(2, 50.0, 2.0, true);
  // Newcomer of size 50 with huge benefit: gathering collects key 1
  // (benefit 1) then key 2 — but evicting key 1 alone frees enough.
  EXPECT_TRUE(cache.CondCacheInMemory(3, 50.0, 1000.0, true));
  EXPECT_EQ(cache.Peek(1), CacheTier::kDisk);
  EXPECT_EQ(cache.Peek(2), CacheTier::kMemory);
  EXPECT_EQ(cache.Peek(3), CacheTier::kMemory);
}

TEST_F(TieredCacheTest, ItemLargerThanMemoryTierRejected) {
  TieredCache cache(SmallConfig(100.0), &policy_);
  EXPECT_FALSE(cache.CondCacheInMemory(1, 200.0, 1e9, true));
  EXPECT_EQ(cache.Peek(1), CacheTier::kNone);
}

TEST_F(TieredCacheTest, InsertDiskAndPromotion) {
  TieredCache cache(SmallConfig(100.0), &policy_);
  cache.InsertDisk(1, 40.0, 5.0);
  EXPECT_EQ(cache.Lookup(1), CacheTier::kDisk);
  EXPECT_EQ(cache.stats().disk_hits, 1);
  // Promote it.
  EXPECT_TRUE(cache.CondCacheInMemory(1, 40.0, 5.0, true));
  EXPECT_EQ(cache.Peek(1), CacheTier::kMemory);
  EXPECT_EQ(cache.stats().promotions, 1);
  EXPECT_DOUBLE_EQ(cache.disk_used(), 0.0);  // removed from dCache on promote
}

TEST_F(TieredCacheTest, AlreadyInMemoryIsIdempotent) {
  TieredCache cache(SmallConfig(100.0), &policy_);
  cache.CondCacheInMemory(1, 40.0, 5.0, true);
  EXPECT_TRUE(cache.CondCacheInMemory(1, 40.0, 7.0, true));
  EXPECT_DOUBLE_EQ(cache.memory_used(), 40.0);
  EXPECT_EQ(cache.memory_items(), 1u);
}

TEST_F(TieredCacheTest, UniformModeEvictsSingleMinBenefit) {
  TieredCache cache(SmallConfig(100.0, std::numeric_limits<double>::infinity(),
                                /*uniform=*/true),
                    &policy_);
  cache.CondCacheInMemory(1, 50.0, 1.0, true);
  cache.CondCacheInMemory(2, 50.0, 5.0, true);
  EXPECT_FALSE(cache.CondCacheInMemory(3, 50.0, 0.5, true));
  EXPECT_TRUE(cache.CondCacheInMemory(3, 50.0, 3.0, true));
  EXPECT_EQ(cache.Peek(1), CacheTier::kDisk);
  EXPECT_EQ(cache.Peek(2), CacheTier::kMemory);
}

TEST_F(TieredCacheTest, FiniteDiskDiscardsByBenefitPerSize) {
  TieredCache cache(SmallConfig(100.0, 100.0), &policy_);
  cache.InsertDisk(1, 60.0, 6.0);   // ratio 0.1
  cache.InsertDisk(2, 40.0, 20.0);  // ratio 0.5
  cache.InsertDisk(3, 60.0, 30.0);  // needs space: discards key 1
  EXPECT_EQ(cache.Peek(1), CacheTier::kNone);
  EXPECT_EQ(cache.Peek(2), CacheTier::kDisk);
  EXPECT_EQ(cache.Peek(3), CacheTier::kDisk);
  EXPECT_EQ(cache.stats().discards, 1);
}

TEST_F(TieredCacheTest, InvalidateRemovesFromEitherTier) {
  TieredCache cache(SmallConfig(100.0), &policy_);
  cache.CondCacheInMemory(1, 40.0, 5.0, true);
  cache.InsertDisk(2, 30.0, 2.0);
  cache.Invalidate(1);
  cache.Invalidate(2);
  cache.Invalidate(3);  // absent: no-op
  EXPECT_EQ(cache.Peek(1), CacheTier::kNone);
  EXPECT_EQ(cache.Peek(2), CacheTier::kNone);
  EXPECT_DOUBLE_EQ(cache.memory_used(), 0.0);
  EXPECT_DOUBLE_EQ(cache.disk_used(), 0.0);
  EXPECT_EQ(cache.stats().invalidations, 2);
}

TEST_F(TieredCacheTest, InvalidateMatchingDropsOnlyMatchingKeys) {
  TieredCache cache(SmallConfig(200.0), &policy_);
  cache.CondCacheInMemory(1, 40.0, 5.0, true);
  cache.CondCacheInMemory(2, 40.0, 5.0, true);
  cache.InsertDisk(3, 30.0, 2.0);
  cache.InsertDisk(4, 30.0, 2.0);

  // Epoch re-sync path: drop every odd key across both tiers at once.
  std::vector<Key> dropped =
      cache.InvalidateMatching([](Key k) { return k % 2 == 1; });
  std::sort(dropped.begin(), dropped.end());
  EXPECT_EQ(dropped, (std::vector<Key>{1, 3}));
  EXPECT_EQ(cache.Peek(1), CacheTier::kNone);
  EXPECT_EQ(cache.Peek(3), CacheTier::kNone);
  EXPECT_EQ(cache.Peek(2), CacheTier::kMemory);
  EXPECT_EQ(cache.Peek(4), CacheTier::kDisk);
  EXPECT_DOUBLE_EQ(cache.memory_used(), 40.0);
  EXPECT_DOUBLE_EQ(cache.disk_used(), 30.0);

  // Counted on its own stat, not as ordinary invalidations.
  EXPECT_EQ(cache.stats().resync_invalidations, 2);
  EXPECT_EQ(cache.stats().invalidations, 0);

  // Nothing left to match: empty result, counters unchanged.
  EXPECT_TRUE(cache.InvalidateMatching([](Key k) { return k > 100; }).empty());
  EXPECT_EQ(cache.stats().resync_invalidations, 2);
}

TEST_F(TieredCacheTest, UpdateBenefitReordersEviction) {
  TieredCache cache(SmallConfig(100.0), &policy_);
  cache.CondCacheInMemory(1, 50.0, 1.0, true);
  cache.CondCacheInMemory(2, 50.0, 2.0, true);
  cache.UpdateBenefit(1, 10.0);  // key 1 is now the more valuable one
  EXPECT_TRUE(cache.CondCacheInMemory(3, 50.0, 5.0, true));
  EXPECT_EQ(cache.Peek(2), CacheTier::kDisk);
  EXPECT_EQ(cache.Peek(1), CacheTier::kMemory);
}

TEST_F(TieredCacheTest, EvictionRaisesPolicyAge) {
  TieredCache cache(SmallConfig(100.0), &policy_);
  cache.CondCacheInMemory(1, 100.0, 7.0, true);
  cache.CondCacheInMemory(2, 100.0, 9.0, true);
  EXPECT_DOUBLE_EQ(policy_.age(), 7.0);
}

TEST_F(TieredCacheTest, ItemSizeReported) {
  TieredCache cache(SmallConfig(), &policy_);
  cache.CondCacheInMemory(1, 33.0, 1.0, true);
  EXPECT_DOUBLE_EQ(cache.ItemSize(1), 33.0);
  EXPECT_DOUBLE_EQ(cache.ItemSize(2), 0.0);
}

TEST_F(TieredCacheTest, MemoryMinBenefitTracksContents) {
  TieredCache cache(SmallConfig(), &policy_);
  EXPECT_TRUE(std::isinf(cache.MemoryMinBenefit()));
  cache.CondCacheInMemory(1, 10.0, 3.0, true);
  cache.CondCacheInMemory(2, 10.0, 1.5, true);
  EXPECT_DOUBLE_EQ(cache.MemoryMinBenefit(), 1.5);
}

TEST_F(TieredCacheTest, StressInvariantsHold) {
  TieredCacheConfig cfg = SmallConfig(1000.0, 3000.0);
  TieredCache cache(cfg, &policy_);
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    Key k = rng.NextBounded(500);
    double size = 1.0 + static_cast<double>(rng.NextBounded(100));
    double benefit = rng.NextDouble() * 100.0;
    switch (rng.NextBounded(4)) {
      case 0:
        cache.CondCacheInMemory(k, size, benefit, true);
        break;
      case 1:
        cache.InsertDisk(k, size, benefit);
        break;
      case 2:
        cache.Lookup(k);
        break;
      case 3:
        cache.Invalidate(k);
        break;
    }
    ASSERT_LE(cache.memory_used(), cfg.memory_capacity_bytes + 1e-9);
    ASSERT_LE(cache.disk_used(), cfg.disk_capacity_bytes + 1e-9);
    ASSERT_GE(cache.memory_used(), 0.0);
    ASSERT_GE(cache.disk_used(), 0.0);
  }
}

}  // namespace
}  // namespace joinopt
