#include "joinopt/cache/tiered_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>
#include <vector>

#include "joinopt/common/random.h"

namespace joinopt {
namespace {

TieredCacheConfig SmallConfig(double mem = 100.0,
                              double disk = std::numeric_limits<double>::infinity(),
                              bool uniform = false) {
  TieredCacheConfig c;
  c.memory_capacity_bytes = mem;
  c.disk_capacity_bytes = disk;
  c.uniform_item_size = uniform;
  return c;
}

class TieredCacheTest : public ::testing::Test {
 protected:
  LfuDaPolicy policy_;
};

TEST_F(TieredCacheTest, MissOnEmpty) {
  TieredCache cache(SmallConfig(), &policy_);
  EXPECT_EQ(cache.Lookup(1), CacheTier::kNone);
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST_F(TieredCacheTest, InsertIntoFreeMemory) {
  TieredCache cache(SmallConfig(), &policy_);
  EXPECT_TRUE(cache.CondCacheInMemory(1, 40.0, 1.0, /*insert=*/true));
  EXPECT_EQ(cache.Lookup(1), CacheTier::kMemory);
  EXPECT_DOUBLE_EQ(cache.memory_used(), 40.0);
}

TEST_F(TieredCacheTest, DecisionOnlyDoesNotInsert) {
  TieredCache cache(SmallConfig(), &policy_);
  EXPECT_TRUE(cache.CondCacheInMemory(1, 40.0, 1.0, /*insert=*/false));
  EXPECT_EQ(cache.Peek(1), CacheTier::kNone);
}

TEST_F(TieredCacheTest, LowBenefitNewcomerRejectedWhenFull) {
  TieredCache cache(SmallConfig(100.0), &policy_);
  cache.CondCacheInMemory(1, 60.0, 10.0, true);
  cache.CondCacheInMemory(2, 40.0, 10.0, true);
  // Memory full; newcomer with lower benefit than everything resident.
  EXPECT_FALSE(cache.CondCacheInMemory(3, 50.0, 1.0, true));
  EXPECT_EQ(cache.Peek(3), CacheTier::kNone);
  EXPECT_GT(cache.stats().admission_rejections, 0);
}

TEST_F(TieredCacheTest, HighBenefitNewcomerDemotesVictims) {
  TieredCache cache(SmallConfig(100.0), &policy_);
  cache.CondCacheInMemory(1, 60.0, 1.0, true);
  cache.CondCacheInMemory(2, 40.0, 5.0, true);
  EXPECT_TRUE(cache.CondCacheInMemory(3, 60.0, 100.0, true));
  EXPECT_EQ(cache.Peek(3), CacheTier::kMemory);
  EXPECT_EQ(cache.Peek(1), CacheTier::kDisk);  // least benefit demoted
  EXPECT_EQ(cache.Peek(2), CacheTier::kMemory);
  EXPECT_EQ(cache.stats().demotions, 1);
}

TEST_F(TieredCacheTest, VariableSizeEvictsMultipleVictims) {
  TieredCache cache(SmallConfig(100.0), &policy_);
  cache.CondCacheInMemory(1, 30.0, 1.0, true);
  cache.CondCacheInMemory(2, 30.0, 2.0, true);
  cache.CondCacheInMemory(3, 30.0, 3.0, true);
  // Needs 90 bytes free: the gather pass collects all three victims (after
  // two, only 70 bytes would be free), and the 10-byte slack left once the
  // newcomer is placed cannot retain any 30-byte item.
  EXPECT_TRUE(cache.CondCacheInMemory(4, 90.0, 100.0, true));
  EXPECT_EQ(cache.Peek(4), CacheTier::kMemory);
  EXPECT_EQ(cache.Peek(1), CacheTier::kDisk);
  EXPECT_EQ(cache.Peek(2), CacheTier::kDisk);
  EXPECT_EQ(cache.Peek(3), CacheTier::kDisk);
  EXPECT_EQ(cache.stats().demotions, 3);
}

TEST_F(TieredCacheTest, BenefitSumBlocksAdmission) {
  TieredCache cache(SmallConfig(100.0), &policy_);
  cache.CondCacheInMemory(1, 50.0, 40.0, true);
  cache.CondCacheInMemory(2, 50.0, 40.0, true);
  // Newcomer benefit 50 < 80 (sum of both victims): rejected.
  EXPECT_FALSE(cache.CondCacheInMemory(3, 100.0, 50.0, true));
  // Newcomer benefit 90 > 80: admitted.
  EXPECT_TRUE(cache.CondCacheInMemory(3, 100.0, 90.0, true));
  EXPECT_EQ(cache.Peek(1), CacheTier::kDisk);
  EXPECT_EQ(cache.Peek(2), CacheTier::kDisk);
}

TEST_F(TieredCacheTest, KeepsBackHighestBenefitGatheredItems) {
  // Algorithm 3's retainment: gathering may over-collect; the best of the
  // gathered set that still fits must survive.
  TieredCache cache(SmallConfig(100.0), &policy_);
  cache.CondCacheInMemory(1, 50.0, 1.0, true);
  cache.CondCacheInMemory(2, 50.0, 2.0, true);
  // Newcomer of size 50 with huge benefit: gathering collects key 1
  // (benefit 1) then key 2 — but evicting key 1 alone frees enough.
  EXPECT_TRUE(cache.CondCacheInMemory(3, 50.0, 1000.0, true));
  EXPECT_EQ(cache.Peek(1), CacheTier::kDisk);
  EXPECT_EQ(cache.Peek(2), CacheTier::kMemory);
  EXPECT_EQ(cache.Peek(3), CacheTier::kMemory);
}

TEST_F(TieredCacheTest, ItemLargerThanMemoryTierRejected) {
  TieredCache cache(SmallConfig(100.0), &policy_);
  EXPECT_FALSE(cache.CondCacheInMemory(1, 200.0, 1e9, true));
  EXPECT_EQ(cache.Peek(1), CacheTier::kNone);
}

TEST_F(TieredCacheTest, InsertDiskAndPromotion) {
  TieredCache cache(SmallConfig(100.0), &policy_);
  cache.InsertDisk(1, 40.0, 5.0);
  EXPECT_EQ(cache.Lookup(1), CacheTier::kDisk);
  EXPECT_EQ(cache.stats().disk_hits, 1);
  // Promote it.
  EXPECT_TRUE(cache.CondCacheInMemory(1, 40.0, 5.0, true));
  EXPECT_EQ(cache.Peek(1), CacheTier::kMemory);
  EXPECT_EQ(cache.stats().promotions, 1);
  EXPECT_DOUBLE_EQ(cache.disk_used(), 0.0);  // removed from dCache on promote
}

TEST_F(TieredCacheTest, AlreadyInMemoryIsIdempotent) {
  TieredCache cache(SmallConfig(100.0), &policy_);
  cache.CondCacheInMemory(1, 40.0, 5.0, true);
  EXPECT_TRUE(cache.CondCacheInMemory(1, 40.0, 7.0, true));
  EXPECT_DOUBLE_EQ(cache.memory_used(), 40.0);
  EXPECT_EQ(cache.memory_items(), 1u);
}

TEST_F(TieredCacheTest, UniformModeEvictsSingleMinBenefit) {
  TieredCache cache(SmallConfig(100.0, std::numeric_limits<double>::infinity(),
                                /*uniform=*/true),
                    &policy_);
  cache.CondCacheInMemory(1, 50.0, 1.0, true);
  cache.CondCacheInMemory(2, 50.0, 5.0, true);
  EXPECT_FALSE(cache.CondCacheInMemory(3, 50.0, 0.5, true));
  EXPECT_TRUE(cache.CondCacheInMemory(3, 50.0, 3.0, true));
  EXPECT_EQ(cache.Peek(1), CacheTier::kDisk);
  EXPECT_EQ(cache.Peek(2), CacheTier::kMemory);
}

TEST_F(TieredCacheTest, FiniteDiskDiscardsByBenefitPerSize) {
  TieredCache cache(SmallConfig(100.0, 100.0), &policy_);
  cache.InsertDisk(1, 60.0, 6.0);   // ratio 0.1
  cache.InsertDisk(2, 40.0, 20.0);  // ratio 0.5
  cache.InsertDisk(3, 60.0, 30.0);  // needs space: discards key 1
  EXPECT_EQ(cache.Peek(1), CacheTier::kNone);
  EXPECT_EQ(cache.Peek(2), CacheTier::kDisk);
  EXPECT_EQ(cache.Peek(3), CacheTier::kDisk);
  EXPECT_EQ(cache.stats().discards, 1);
}

TEST_F(TieredCacheTest, InvalidateRemovesFromEitherTier) {
  TieredCache cache(SmallConfig(100.0), &policy_);
  cache.CondCacheInMemory(1, 40.0, 5.0, true);
  cache.InsertDisk(2, 30.0, 2.0);
  cache.Invalidate(1);
  cache.Invalidate(2);
  cache.Invalidate(3);  // absent: no-op
  EXPECT_EQ(cache.Peek(1), CacheTier::kNone);
  EXPECT_EQ(cache.Peek(2), CacheTier::kNone);
  EXPECT_DOUBLE_EQ(cache.memory_used(), 0.0);
  EXPECT_DOUBLE_EQ(cache.disk_used(), 0.0);
  EXPECT_EQ(cache.stats().invalidations, 2);
}

TEST_F(TieredCacheTest, InvalidateMatchingDropsOnlyMatchingKeys) {
  TieredCache cache(SmallConfig(200.0), &policy_);
  cache.CondCacheInMemory(1, 40.0, 5.0, true);
  cache.CondCacheInMemory(2, 40.0, 5.0, true);
  cache.InsertDisk(3, 30.0, 2.0);
  cache.InsertDisk(4, 30.0, 2.0);

  // Epoch re-sync path: drop every odd key across both tiers at once.
  std::vector<Key> dropped =
      cache.InvalidateMatching([](Key k) { return k % 2 == 1; });
  std::sort(dropped.begin(), dropped.end());
  EXPECT_EQ(dropped, (std::vector<Key>{1, 3}));
  EXPECT_EQ(cache.Peek(1), CacheTier::kNone);
  EXPECT_EQ(cache.Peek(3), CacheTier::kNone);
  EXPECT_EQ(cache.Peek(2), CacheTier::kMemory);
  EXPECT_EQ(cache.Peek(4), CacheTier::kDisk);
  EXPECT_DOUBLE_EQ(cache.memory_used(), 40.0);
  EXPECT_DOUBLE_EQ(cache.disk_used(), 30.0);

  // Counted on its own stat, not as ordinary invalidations.
  EXPECT_EQ(cache.stats().resync_invalidations, 2);
  EXPECT_EQ(cache.stats().invalidations, 0);

  // Nothing left to match: empty result, counters unchanged.
  EXPECT_TRUE(cache.InvalidateMatching([](Key k) { return k > 100; }).empty());
  EXPECT_EQ(cache.stats().resync_invalidations, 2);
}

TEST_F(TieredCacheTest, UpdateBenefitReordersEviction) {
  TieredCache cache(SmallConfig(100.0), &policy_);
  cache.CondCacheInMemory(1, 50.0, 1.0, true);
  cache.CondCacheInMemory(2, 50.0, 2.0, true);
  cache.UpdateBenefit(1, 10.0);  // key 1 is now the more valuable one
  EXPECT_TRUE(cache.CondCacheInMemory(3, 50.0, 5.0, true));
  EXPECT_EQ(cache.Peek(2), CacheTier::kDisk);
  EXPECT_EQ(cache.Peek(1), CacheTier::kMemory);
}

TEST_F(TieredCacheTest, EvictionRaisesPolicyAge) {
  TieredCache cache(SmallConfig(100.0), &policy_);
  cache.CondCacheInMemory(1, 100.0, 7.0, true);
  cache.CondCacheInMemory(2, 100.0, 9.0, true);
  EXPECT_DOUBLE_EQ(policy_.age(), 7.0);
}

TEST_F(TieredCacheTest, ItemSizeReported) {
  TieredCache cache(SmallConfig(), &policy_);
  cache.CondCacheInMemory(1, 33.0, 1.0, true);
  EXPECT_DOUBLE_EQ(cache.ItemSize(1), 33.0);
  EXPECT_DOUBLE_EQ(cache.ItemSize(2), 0.0);
}

TEST_F(TieredCacheTest, MemoryMinBenefitTracksContents) {
  TieredCache cache(SmallConfig(), &policy_);
  EXPECT_TRUE(std::isinf(cache.MemoryMinBenefit()));
  cache.CondCacheInMemory(1, 10.0, 3.0, true);
  cache.CondCacheInMemory(2, 10.0, 1.5, true);
  EXPECT_DOUBLE_EQ(cache.MemoryMinBenefit(), 1.5);
}

TEST_F(TieredCacheTest, StressInvariantsHold) {
  TieredCacheConfig cfg = SmallConfig(1000.0, 3000.0);
  TieredCache cache(cfg, &policy_);
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    Key k = rng.NextBounded(500);
    double size = 1.0 + static_cast<double>(rng.NextBounded(100));
    double benefit = rng.NextDouble() * 100.0;
    switch (rng.NextBounded(4)) {
      case 0:
        cache.CondCacheInMemory(k, size, benefit, true);
        break;
      case 1:
        cache.InsertDisk(k, size, benefit);
        break;
      case 2:
        cache.Lookup(k);
        break;
      case 3:
        cache.Invalidate(k);
        break;
    }
    ASSERT_LE(cache.memory_used(), cfg.memory_capacity_bytes + 1e-9);
    ASSERT_LE(cache.disk_used(), cfg.disk_capacity_bytes + 1e-9);
    ASSERT_GE(cache.memory_used(), 0.0);
    ASSERT_GE(cache.disk_used(), 0.0);
  }
}

// ---------------------------------------------------------------------------
// Eviction-order equivalence against the old std::multimap implementation.
//
// RefCache is a faithful port of the pre-intrusive-heap TieredCache (Items
// in a node map, two std::multimap<double, Key> benefit orders, emplace at
// upper_bound). The real cache's (benefit, seq) heap must make identical
// decisions — including FIFO victim choice among equal benefits and the
// ratio-tie scan in EnsureDiskSpace — on any float-exact input stream.

class RefCache {
 public:
  RefCache(const TieredCacheConfig& cfg, BenefitPolicy* policy)
      : cfg_(cfg), policy_(policy) {}

  CacheTier Peek(Key key) const {
    auto it = items_.find(key);
    return it == items_.end() ? CacheTier::kNone : it->second.tier;
  }

  void UpdateBenefit(Key key, double benefit) {
    auto it = items_.find(key);
    if (it == items_.end()) return;
    auto& order = it->second.tier == CacheTier::kMemory ? mem_ : disk_;
    order.erase(it->second.order_it);
    it->second.benefit = benefit;
    it->second.order_it = order.emplace(benefit, key);
  }

  bool CondCacheInMemory(Key key, double size, double benefit, bool insert) {
    auto it = items_.find(key);
    if (it != items_.end() && it->second.tier == CacheTier::kMemory) {
      if (insert) UpdateBenefit(key, benefit);
      return true;
    }
    bool decision = cfg_.uniform_item_size
                        ? CondUniform(key, size, benefit, insert)
                        : CondVariable(key, size, benefit, insert);
    return decision;
  }

  void InsertDisk(Key key, double size, double benefit) {
    auto it = items_.find(key);
    if (it != items_.end()) {
      UpdateBenefit(key, benefit);
      return;
    }
    if (size > cfg_.disk_capacity_bytes) return;
    EnsureDiskSpace(size);
    Item item{size, benefit, CacheTier::kDisk, {}};
    auto [ins, ok] = items_.emplace(key, item);
    ins->second.order_it = disk_.emplace(benefit, key);
    disk_used_ += size;
  }

  void Invalidate(Key key) {
    auto it = items_.find(key);
    if (it == items_.end()) return;
    if (it->second.tier == CacheTier::kMemory) {
      mem_.erase(it->second.order_it);
      memory_used_ -= it->second.size;
    } else {
      disk_.erase(it->second.order_it);
      disk_used_ -= it->second.size;
    }
    items_.erase(it);
  }

  double memory_used() const { return memory_used_; }
  double disk_used() const { return disk_used_; }
  size_t memory_items() const { return mem_.size(); }
  size_t disk_items() const { return disk_.size(); }
  double MemoryMinBenefit() const {
    return mem_.empty() ? std::numeric_limits<double>::infinity()
                        : mem_.begin()->first;
  }
  /// Memory-tier keys in ascending eviction order — the strongest
  /// equivalence signal (exact multimap iteration order incl. ties).
  std::vector<Key> MemoryEvictionOrder() const {
    std::vector<Key> out;
    for (const auto& [b, k] : mem_) out.push_back(k);
    return out;
  }

 private:
  struct Item {
    double size;
    double benefit;
    CacheTier tier;
    std::multimap<double, Key>::iterator order_it;
  };

  bool CondUniform(Key key, double size, double benefit, bool insert) {
    if (memory_used_ + size <= cfg_.memory_capacity_bytes) {
      if (insert) PlaceInMemory(key, size, benefit);
      return true;
    }
    if (mem_.empty()) return false;
    double min_benefit = mem_.begin()->first;
    if (benefit <= min_benefit) return false;
    if (insert) {
      Key victim = mem_.begin()->second;
      policy_->OnEvict(min_benefit);
      Demote(victim);
      PlaceInMemory(key, size, benefit);
    }
    return true;
  }

  bool CondVariable(Key key, double size, double benefit, bool insert) {
    if (size > cfg_.memory_capacity_bytes) return false;
    if (memory_used_ + size <= cfg_.memory_capacity_bytes) {
      if (insert) PlaceInMemory(key, size, benefit);
      return true;
    }
    double free_mem = cfg_.memory_capacity_bytes - memory_used_;
    double gathered = 0.0;
    double benefit_sum = 0.0;
    std::vector<Key> prelim;
    for (const auto& [b, k] : mem_) {
      if (free_mem + gathered >= size) break;
      prelim.push_back(k);
      gathered += items_.at(k).size;
      benefit_sum += b;
    }
    if (free_mem + gathered < size) return false;
    if (benefit <= benefit_sum) return false;
    if (!insert) return true;
    double slack = free_mem + gathered - size;
    std::vector<Key> evict;
    for (auto rit = prelim.rbegin(); rit != prelim.rend(); ++rit) {
      double isz = items_.at(*rit).size;
      if (isz <= slack) {
        slack -= isz;
      } else {
        evict.push_back(*rit);
      }
    }
    for (Key victim : evict) {
      policy_->OnEvict(items_.at(victim).benefit);
      Demote(victim);
    }
    PlaceInMemory(key, size, benefit);
    return true;
  }

  void PlaceInMemory(Key key, double size, double benefit) {
    auto it = items_.find(key);
    if (it != items_.end()) {
      disk_.erase(it->second.order_it);
      disk_used_ -= it->second.size;
      items_.erase(it);
    }
    Item item{size, benefit, CacheTier::kMemory, {}};
    auto [ins, ok] = items_.emplace(key, item);
    ins->second.order_it = mem_.emplace(benefit, key);
    memory_used_ += size;
  }

  void Demote(Key key) {
    auto it = items_.find(key);
    Item& item = it->second;
    mem_.erase(item.order_it);
    memory_used_ -= item.size;
    EnsureDiskSpace(item.size);
    item.tier = CacheTier::kDisk;
    item.order_it = disk_.emplace(item.benefit, key);
    disk_used_ += item.size;
  }

  void EnsureDiskSpace(double size) {
    while (disk_used_ + size > cfg_.disk_capacity_bytes && !disk_.empty()) {
      auto best = disk_.begin();
      double best_ratio = best->first / items_.at(best->second).size;
      for (auto it2 = disk_.begin(); it2 != disk_.end(); ++it2) {
        double ratio = it2->first / items_.at(it2->second).size;
        if (ratio < best_ratio) {
          best = it2;
          best_ratio = ratio;
        }
      }
      policy_->OnEvict(best->first);
      auto it = items_.find(best->second);
      disk_.erase(it->second.order_it);
      disk_used_ -= it->second.size;
      items_.erase(it);
    }
  }

  TieredCacheConfig cfg_;
  BenefitPolicy* policy_;
  std::unordered_map<Key, Item> items_;
  std::multimap<double, Key> mem_;
  std::multimap<double, Key> disk_;
  double memory_used_ = 0.0;
  double disk_used_ = 0.0;
};

/// The real cache exposes no eviction-order iterator; recover the memory
/// tier's ascending order by draining copies... instead, derive it by
/// repeatedly demoting via uniform-style probes is intrusive. We compare
/// observable behaviour: per-op decisions, tier placement of every key,
/// used bytes, item counts, and MemoryMinBenefit after every operation —
/// over benefit distributions chosen to collide constantly, so any FIFO
/// tie-break divergence surfaces as a placement mismatch within a few ops.
void RunEquivalence(const TieredCacheConfig& cfg, uint64_t seed, int rounds,
                    int key_space, bool uniform_sizes) {
  LfuDaPolicy real_policy;
  LfuDaPolicy ref_policy;
  TieredCache cache(cfg, &real_policy);
  RefCache ref(cfg, &ref_policy);
  Rng rng(seed);
  for (int round = 0; round < rounds; ++round) {
    Key k = rng.NextBounded(static_cast<uint64_t>(key_space));
    // Small discrete float-exact domains force frequent ties.
    double size =
        uniform_sizes ? 10.0 : 10.0 * (1.0 + rng.NextBounded(3));
    double benefit = 1.0 + static_cast<double>(rng.NextBounded(4));
    switch (rng.NextBounded(5)) {
      case 0:
      case 1: {
        bool got = cache.CondCacheInMemory(k, size, benefit, true);
        bool want = ref.CondCacheInMemory(k, size, benefit, true);
        ASSERT_EQ(got, want) << "round " << round << " key " << k;
        break;
      }
      case 2: {
        cache.InsertDisk(k, size, benefit);
        ref.InsertDisk(k, size, benefit);
        break;
      }
      case 3: {
        cache.UpdateBenefit(k, benefit);
        ref.UpdateBenefit(k, benefit);
        break;
      }
      case 4: {
        cache.Invalidate(k);
        ref.Invalidate(k);
        break;
      }
    }
    ASSERT_DOUBLE_EQ(cache.memory_used(), ref.memory_used())
        << "round " << round;
    ASSERT_DOUBLE_EQ(cache.disk_used(), ref.disk_used()) << "round " << round;
    ASSERT_EQ(cache.memory_items(), ref.memory_items()) << "round " << round;
    ASSERT_EQ(cache.disk_items(), ref.disk_items()) << "round " << round;
    ASSERT_EQ(cache.MemoryMinBenefit(), ref.MemoryMinBenefit())
        << "round " << round;
    for (Key probe = 0; probe < static_cast<Key>(key_space); ++probe) {
      ASSERT_EQ(cache.Peek(probe), ref.Peek(probe))
          << "round " << round << " key " << probe;
    }
  }
}

TEST_F(TieredCacheTest, EvictionOrderMatchesMultimapUniform) {
  TieredCacheConfig cfg = SmallConfig(100.0,
                                      std::numeric_limits<double>::infinity(),
                                      /*uniform=*/true);
  RunEquivalence(cfg, /*seed=*/21, /*rounds=*/8000, /*key_space=*/40,
                 /*uniform_sizes=*/true);
}

TEST_F(TieredCacheTest, EvictionOrderMatchesMultimapVariable) {
  TieredCacheConfig cfg = SmallConfig(120.0);
  RunEquivalence(cfg, /*seed=*/22, /*rounds=*/8000, /*key_space=*/40,
                 /*uniform_sizes=*/false);
}

TEST_F(TieredCacheTest, EvictionOrderMatchesMultimapFiniteDisk) {
  // Finite disk exercises EnsureDiskSpace's ratio scan and its ties.
  TieredCacheConfig cfg = SmallConfig(100.0, 300.0);
  RunEquivalence(cfg, /*seed=*/23, /*rounds=*/8000, /*key_space=*/60,
                 /*uniform_sizes=*/false);
}

TEST_F(TieredCacheTest, FifoVictimAmongEqualBenefits) {
  // Three equal-benefit items fill memory; a strictly better newcomer must
  // demote the OLDEST equal-benefit resident (multimap FIFO semantics).
  TieredCacheConfig cfg = SmallConfig(30.0,
                                      std::numeric_limits<double>::infinity(),
                                      /*uniform=*/true);
  TieredCache cache(cfg, &policy_);
  cache.CondCacheInMemory(1, 10.0, 2.0, true);
  cache.CondCacheInMemory(2, 10.0, 2.0, true);
  cache.CondCacheInMemory(3, 10.0, 2.0, true);
  EXPECT_TRUE(cache.CondCacheInMemory(4, 10.0, 5.0, true));
  EXPECT_EQ(cache.Peek(1), CacheTier::kDisk);  // oldest tie demoted
  EXPECT_EQ(cache.Peek(2), CacheTier::kMemory);
  EXPECT_EQ(cache.Peek(3), CacheTier::kMemory);
  // Re-scoring key 2 to the same benefit moves it behind key 3 in FIFO
  // order (multimap erase + re-emplace lands at upper_bound).
  cache.UpdateBenefit(2, 2.0);
  EXPECT_TRUE(cache.CondCacheInMemory(5, 10.0, 5.0, true));
  EXPECT_EQ(cache.Peek(3), CacheTier::kDisk);  // now the oldest tie
  EXPECT_EQ(cache.Peek(2), CacheTier::kMemory);
}

}  // namespace
}  // namespace joinopt
