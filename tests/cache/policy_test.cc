#include "joinopt/cache/policy.h"

#include <gtest/gtest.h>

namespace joinopt {
namespace {

TEST(LfuDaPolicyTest, BenefitGrowsWithFrequency) {
  LfuDaPolicy p;
  EXPECT_LT(p.Benefit(1, 1.0), p.Benefit(5, 1.0));
}

TEST(LfuDaPolicyTest, WeightScalesBenefit) {
  LfuDaPolicy p;
  EXPECT_DOUBLE_EQ(p.Benefit(10, 2.0), 20.0);
}

TEST(LfuDaPolicyTest, AgingRaisesFloor) {
  LfuDaPolicy p;
  EXPECT_DOUBLE_EQ(p.age(), 0.0);
  p.OnEvict(50.0);
  EXPECT_DOUBLE_EQ(p.age(), 50.0);
  // A brand-new item (freq 1) now scores above a stale pre-aging score.
  EXPECT_GT(p.Benefit(1, 1.0), 50.0);
}

TEST(LfuDaPolicyTest, AgeNeverDecreases) {
  LfuDaPolicy p;
  p.OnEvict(50.0);
  p.OnEvict(10.0);
  EXPECT_DOUBLE_EQ(p.age(), 50.0);
}

TEST(LfuDaPolicyTest, NewItemsOutscoreStaleHotItems) {
  // The dynamic-aging property that matters for shifting distributions
  // (Fig. 9): after enough evictions at high ages, a fresh key beats a key
  // whose (stale) benefit was computed long ago.
  LfuDaPolicy p;
  double old_hot = p.Benefit(100, 1.0);  // scored at age 0
  p.OnEvict(old_hot + 50.0);
  double fresh = p.Benefit(1, 1.0);
  EXPECT_GT(fresh, old_hot);
}

TEST(LruPolicyTest, LaterAccessAlwaysWins) {
  LruPolicy p;
  double b1 = p.Benefit(100, 5.0);  // frequency ignored
  double b2 = p.Benefit(1, 0.1);
  EXPECT_GT(b2, b1);
}

TEST(LfuPolicyTest, NoAging) {
  LfuPolicy p;
  double before = p.Benefit(3, 1.0);
  p.OnEvict(1000.0);
  EXPECT_DOUBLE_EQ(p.Benefit(3, 1.0), before);
  EXPECT_DOUBLE_EQ(p.age(), 0.0);
}

}  // namespace
}  // namespace joinopt
