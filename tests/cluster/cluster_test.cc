// Multi-node cluster tests over real loopback sockets: owner-aware routing
// through the shared topology, controller-driven crash detection with
// region promotion, and the two exactly-once acceptance scenarios — a data
// node killed mid-join and a compute worker killed mid-join, both finishing
// with zero lost and zero duplicated outputs.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "joinopt/cluster/compute_group.h"
#include "joinopt/cluster/deployment.h"
#include "joinopt/engine/async_api.h"
#include "joinopt/store/log_store.h"

namespace joinopt {
namespace {

UserFn EchoFn() {
  return [](Key key, const std::string& params, const std::string& value) {
    return std::to_string(key) + "/" + params + "/" + value;
  };
}

/// Deterministic UDF with a small busy delay, so kill-mid-join tests have
/// a window to land the fault while work is in flight.
UserFn SlowEchoFn(double seconds) {
  return [seconds](Key key, const std::string& params,
                   const std::string& value) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    return std::to_string(key) + "/" + params + "/" + value;
  };
}

bool WaitFor(const std::function<bool()>& pred, double timeout_sec) {
  auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_sec));
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

ClusterDeploymentOptions FastOptions() {
  ClusterDeploymentOptions opts;
  opts.topology.num_data_nodes = 3;
  opts.topology.regions_per_node = 4;
  opts.topology.replication_factor = 2;
  opts.client.recovery.request_timeout = 1.0;
  opts.client.recovery.backoff_base = 2e-3;
  opts.client.recovery.backoff_max = 20e-3;
  opts.client.recovery.max_attempts = 6;
  opts.controller.probe_interval = 10e-3;
  opts.controller.recovery.request_timeout = 150e-3;
  opts.controller.recovery.max_attempts = 3;
  return opts;
}

int64_t TotalServerRequests(ClusterDeployment& deploy) {
  int64_t total = 0;
  for (int i = 0; i < deploy.num_data_nodes(); ++i) {
    if (deploy.data_node(i).server() != nullptr) {
      total += deploy.data_node(i).server()->stats().requests;
    }
  }
  return total;
}

TEST(ClusterTest, OwnerAwareRoutingServesEveryKeyAndSpreadsTraffic) {
  ClusterDeployment deploy(EchoFn(), FastOptions());
  ASSERT_TRUE(deploy.Start().ok());
  for (Key k = 0; k < 100; ++k) {
    ASSERT_TRUE(deploy.Seed(k, "v-" + std::to_string(k)).ok());
  }

  for (Key k = 0; k < 100; ++k) {
    auto fetched = deploy.client().Fetch(k);
    ASSERT_TRUE(fetched.ok()) << fetched.status();
    EXPECT_EQ(fetched->value, "v-" + std::to_string(k));

    auto executed = deploy.client().Execute(k, "p", EchoFn());
    ASSERT_TRUE(executed.ok()) << executed.status();
    EXPECT_EQ(*executed,
              std::to_string(k) + "/p/v-" + std::to_string(k));
  }

  // Owner-aware routing means every node's *own* server saw traffic — a
  // single-endpoint client would funnel everything to one.
  for (int i = 0; i < deploy.num_data_nodes(); ++i) {
    EXPECT_GT(deploy.data_node(i).server()->stats().requests, 0)
        << "node " << i << " never served a request";
  }
  EXPECT_EQ(deploy.client().recovery_counters().tuples_failed, 0);
}

TEST(ClusterTest, OwnerOfIsServedLocallyWithZeroRpcs) {
  ClusterDeployment deploy(EchoFn(), FastOptions());
  ASSERT_TRUE(deploy.Start().ok());
  int64_t before = TotalServerRequests(deploy);
  for (Key k = 0; k < 64; ++k) {
    EXPECT_EQ(deploy.client().OwnerOf(k), deploy.topology().OwnerOf(k));
  }
  EXPECT_EQ(TotalServerRequests(deploy), before)
      << "OwnerOf must be answered from the shared topology, not over RPC";
}

TEST(ClusterTest, PutOverTheWireIsReadableAndVersioned) {
  ClusterDeployment deploy(EchoFn(), FastOptions());
  ASSERT_TRUE(deploy.Start().ok());
  auto v1 = deploy.client().Put(7, "first");
  ASSERT_TRUE(v1.ok()) << v1.status();
  auto v2 = deploy.client().Put(7, "second");
  ASSERT_TRUE(v2.ok()) << v2.status();
  EXPECT_GT(*v2, *v1);
  auto fetched = deploy.client().Fetch(7);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->value, "second");
  EXPECT_EQ(fetched->version, *v2);
}

TEST(ClusterTest, ExecuteBatchSplitsByOwnerAndStaysIndexAligned) {
  ClusterDeployment deploy(EchoFn(), FastOptions());
  ASSERT_TRUE(deploy.Start().ok());
  std::vector<std::pair<Key, std::string>> items;
  for (Key k = 0; k < 30; ++k) {
    ASSERT_TRUE(deploy.Seed(k, "b-" + std::to_string(k)).ok());
    items.emplace_back(k, "q" + std::to_string(k));
  }
  auto results = deploy.client().ExecuteBatch(items, EchoFn());
  ASSERT_EQ(results.size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status();
    EXPECT_EQ(*results[i], std::to_string(i) + "/q" + std::to_string(i) +
                               "/b-" + std::to_string(i));
  }
  // 30 keys over 3 nodes: the batch must have split into per-owner groups.
  EXPECT_GE(deploy.client().stats().batches_split, 1);
}

TEST(ClusterTest, ControllerDetectsCrashAndPromotesEveryRegion) {
  ClusterDeployment deploy(EchoFn(), FastOptions());
  ASSERT_TRUE(deploy.Start().ok());
  for (Key k = 0; k < 60; ++k) {
    ASSERT_TRUE(deploy.Seed(k, "c-" + std::to_string(k)).ok());
  }
  std::vector<int> owned = deploy.topology().RegionsOwnedBy(1);
  ASSERT_FALSE(owned.empty());

  deploy.KillDataNode(1);
  ASSERT_TRUE(WaitFor([&] { return !deploy.topology().NodeUp(1); }, 10.0))
      << "controller never declared the killed node dead";
  ASSERT_NE(deploy.controller(), nullptr);
  EXPECT_GE(deploy.controller()->stats().nodes_declared_dead, 1);
  EXPECT_GE(deploy.controller()->stats().regions_reassigned,
            static_cast<int64_t>(owned.size()));

  // Replication factor 2 guarantees a live follower for every region the
  // dead node owned: all of them must have been promoted away.
  EXPECT_TRUE(deploy.topology().RegionsOwnedBy(1).empty());
  for (int region : owned) {
    NodeId owner = deploy.topology().RegionOwner(region);
    EXPECT_NE(owner, 1);
    EXPECT_TRUE(deploy.topology().NodeUp(owner));
  }

  // Every key is still readable through the survivors.
  for (Key k = 0; k < 60; ++k) {
    auto fetched = deploy.client().Fetch(k);
    ASSERT_TRUE(fetched.ok()) << "key " << k << ": " << fetched.status();
    EXPECT_EQ(fetched->value, "c-" + std::to_string(k));
  }
}

TEST(ClusterTest, ControllerReadmitsFalselySuspectedNode) {
  ClusterDeployment deploy(EchoFn(), FastOptions());
  ASSERT_TRUE(deploy.Start().ok());
  for (Key k = 0; k < 40; ++k) {
    ASSERT_TRUE(deploy.Seed(k, "r-" + std::to_string(k)).ok());
  }

  // False suspicion: mark node 1 down without killing anything. The
  // process keeps serving, so nothing will ever restart it — before
  // rejoin, a node in this state stayed out of every replica chain
  // forever.
  deploy.topology().MarkNodeDown(1);
  ASSERT_FALSE(deploy.topology().NodeUp(1));
  EXPECT_TRUE(deploy.topology().RegionsOwnedBy(1).empty());

  ASSERT_TRUE(WaitFor([&] { return deploy.topology().NodeUp(1); }, 10.0))
      << "controller never re-admitted the live, still-serving node";
  ASSERT_NE(deploy.controller(), nullptr);
  EXPECT_GE(deploy.controller()->stats().nodes_rejoined, 1);

  // Back in the replica chains as a follower: some region lists it again.
  bool in_a_chain = false;
  for (int r = 0; r < deploy.topology().num_regions() && !in_a_chain; ++r) {
    for (NodeId n : deploy.topology().RegionReplicas(r)) {
      if (n == 1) in_a_chain = true;
    }
  }
  EXPECT_TRUE(in_a_chain) << "rejoined node is in no region's chain";

  // The cluster serves every key throughout.
  for (Key k = 0; k < 40; ++k) {
    auto fetched = deploy.client().Fetch(k);
    ASSERT_TRUE(fetched.ok()) << fetched.status();
    EXPECT_EQ(fetched->value, "r-" + std::to_string(k));
  }
}

/// The acceptance test: kill a data node mid-join; the run must produce
/// exactly the outputs of a fault-free run — nothing lost, nothing
/// doubled, values identical.
TEST(ClusterTest, KillDataNodeMidJoinMatchesFaultFreeRunExactly) {
  const int kItems = 600;
  auto make_items = [] {
    std::vector<std::pair<Key, std::string>> items;
    for (int i = 0; i < kItems; ++i) {
      items.emplace_back(static_cast<Key>(i % 120),
                         "p" + std::to_string(i));
    }
    return items;
  };
  auto seed_all = [](ClusterDeployment& deploy) {
    for (Key k = 0; k < 120; ++k) {
      ASSERT_TRUE(deploy.Seed(k, "j-" + std::to_string(k)).ok());
    }
  };
  ComputeWorkerGroupOptions gopts;
  gopts.num_workers = 3;
  gopts.claim_window = 4;
  gopts.invoker.num_threads = 2;

  // Fault-free reference run.
  std::vector<StatusOr<std::string>> reference;
  {
    ClusterDeployment deploy(EchoFn(), FastOptions());
    ASSERT_TRUE(deploy.Start().ok());
    seed_all(deploy);
    ComputeWorkerGroup group(&deploy.client(), EchoFn(), gopts);
    reference = group.Run(make_items());
  }
  ASSERT_EQ(reference.size(), static_cast<size_t>(kItems));
  for (const auto& r : reference) ASSERT_TRUE(r.ok()) << r.status();

  // Faulted run: node 1 dies while the join is in flight.
  std::vector<StatusOr<std::string>> faulted;
  ComputeWorkerGroupStats gstats;
  {
    ClusterDeployment deploy(SlowEchoFn(200e-6), FastOptions());
    ASSERT_TRUE(deploy.Start().ok());
    seed_all(deploy);
    ComputeWorkerGroup group(&deploy.client(), SlowEchoFn(200e-6), gopts);
    std::thread killer([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
      deploy.KillDataNode(1);
    });
    faulted = group.Run(make_items());
    killer.join();
    gstats = group.stats();
  }

  // Zero lost, zero duplicated: the output tables are identical.
  ASSERT_EQ(faulted.size(), reference.size());
  for (size_t i = 0; i < faulted.size(); ++i) {
    ASSERT_TRUE(faulted[i].ok())
        << "item " << i << " lost to the fault: " << faulted[i].status();
    EXPECT_EQ(*faulted[i], *reference[i]) << "item " << i << " diverged";
  }
  EXPECT_EQ(gstats.items_completed, kItems);
}

/// Compute-side crash recovery: a worker killed mid-join stops
/// acknowledging; the monitor replays its unacknowledged items on the
/// survivors and the output table is still exactly-once.
TEST(ClusterTest, KilledComputeWorkerItemsReplayExactlyOnce) {
  LogStructuredStore store;
  const int kItems = 200;
  for (Key k = 0; k < 100; ++k) {
    store.Put(k, "w-" + std::to_string(k));
  }
  LogStoreDataService service(&store, /*num_shards=*/4);

  ComputeWorkerGroupOptions gopts;
  gopts.num_workers = 3;
  gopts.claim_window = 4;
  gopts.invoker.num_threads = 2;
  gopts.recovery.request_timeout = 100e-3;
  gopts.monitor_interval = 10e-3;
  UserFn fn = SlowEchoFn(1e-3);
  ComputeWorkerGroup group(&service, fn, gopts);

  std::vector<std::pair<Key, std::string>> items;
  for (int i = 0; i < kItems; ++i) {
    items.emplace_back(static_cast<Key>(i % 100), "p" + std::to_string(i));
  }

  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    group.KillWorker(0);
  });
  auto outputs = group.Run(items);
  killer.join();

  ASSERT_EQ(outputs.size(), items.size());
  for (size_t i = 0; i < outputs.size(); ++i) {
    ASSERT_TRUE(outputs[i].ok()) << "item " << i << " lost";
    EXPECT_EQ(*outputs[i], std::to_string(items[i].first) + "/" +
                               items[i].second + "/" + "w-" +
                               std::to_string(items[i].first));
  }
  ComputeWorkerGroupStats stats = group.stats();
  EXPECT_EQ(stats.items_completed, kItems);  // each item written exactly once
  EXPECT_GE(stats.workers_lost, 1);
  EXPECT_GE(stats.items_replayed, 1);
  EXPECT_GE(stats.rebalances, 1);
}

}  // namespace
}  // namespace joinopt
