// Wire-level invalidation tests: the Subscribe/Notify stream end to end
// (raw frames and through UpdateSubscriber into a ParallelInvoker), the
// epoch/seq re-sync discipline — sequence gaps after a dropped stream
// trigger a *targeted* region re-sync, node restarts bump epochs — and the
// no-stale-read guarantee across reconnects.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "joinopt/cluster/deployment.h"
#include "joinopt/engine/parallel_invoker.h"
#include "joinopt/net/socket.h"

namespace joinopt {
namespace {

UserFn EchoFn() {
  return [](Key key, const std::string& params, const std::string& value) {
    return std::to_string(key) + "/" + params + "/" + value;
  };
}

bool WaitFor(const std::function<bool()>& pred, double timeout_sec) {
  auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_sec));
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

ClusterDeploymentOptions SmallOptions(int nodes) {
  ClusterDeploymentOptions opts;
  opts.topology.num_data_nodes = nodes;
  opts.topology.regions_per_node = 4;
  opts.topology.replication_factor = 1;
  opts.start_controller = false;  // liveness managed by hand here
  opts.client.recovery.backoff_base = 2e-3;
  opts.client.recovery.backoff_max = 20e-3;
  return opts;
}

UpdateSubscriberOptions FastSubscriber() {
  UpdateSubscriberOptions opts;
  opts.poll_tick = 20e-3;
  opts.reconnect_backoff = 10e-3;
  return opts;
}

/// A key owned (as primary) by `node` in this topology.
Key KeyOwnedBy(ClusterTopology& topology, NodeId node, Key start = 0) {
  for (Key k = start; k < start + 10000; ++k) {
    if (topology.OwnerOf(k) == node) return k;
  }
  ADD_FAILURE() << "no key owned by node " << node;
  return 0;
}

TEST(SubscriberTest, RawSubscribeDeliversSnapshotThenInOrderEvents) {
  ClusterDeployment deploy(EchoFn(), SmallOptions(1));
  ASSERT_TRUE(deploy.Start().ok());
  RpcEndpoint ep = deploy.topology().endpoint(0);

  auto conn = TcpConnect(ep.host, ep.port, 1.0);
  ASSERT_TRUE(conn.ok()) << conn.status();
  ASSERT_TRUE(SendFrame(conn->get(), MsgType::kSubscribeReq, 1,
                        EncodeSubscribeRequest(99), 1.0,
                        kDefaultMaxFrameBytes)
                  .ok());

  auto resp = RecvFrame(conn->get(), 2.0, kDefaultMaxFrameBytes);
  ASSERT_TRUE(resp.ok()) << resp.status();
  ASSERT_EQ(resp->header.type, MsgType::kSubscribeResp);
  auto snapshot = DecodeSubscribeResponse(resp->body);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  ASSERT_EQ(snapshot->size(),
            static_cast<size_t>(deploy.topology().num_regions()));
  for (const RegionEpoch& re : *snapshot) {
    EXPECT_EQ(re.epoch, 1u);
    EXPECT_EQ(re.seq, 0u);
  }

  // A write lands as a kNotifyEvt carrying the bumped sequence number.
  Key key = 5;
  auto version = deploy.Seed(key, "value");
  ASSERT_TRUE(version.ok());
  auto evt = RecvFrame(conn->get(), 2.0, kDefaultMaxFrameBytes);
  ASSERT_TRUE(evt.ok()) << evt.status();
  ASSERT_EQ(evt->header.type, MsgType::kNotifyEvt);
  auto event = DecodeNotifyEvent(evt->body);
  ASSERT_TRUE(event.ok()) << event.status();
  EXPECT_EQ(event->key, key);
  EXPECT_EQ(event->version, *version);
  EXPECT_EQ(event->region, deploy.topology().RegionOf(key));
  EXPECT_EQ(event->epoch, 1u);
  EXPECT_EQ(event->seq, 1u);
}

TEST(SubscriberTest, NotificationsReachTheInvokerAndKillStaleReads) {
  ClusterDeployment deploy(EchoFn(), SmallOptions(2));
  ASSERT_TRUE(deploy.Start().ok());
  Key key = KeyOwnedBy(deploy.topology(), 0);
  ASSERT_TRUE(deploy.Seed(key, "old").ok());

  ParallelInvokerOptions iopts;
  iopts.num_threads = 2;
  ParallelInvoker invoker(&deploy.client(), EchoFn(), iopts);
  auto subscriber = deploy.MakeSubscriber(&invoker, FastSubscriber());
  ASSERT_TRUE(WaitFor([&] { return subscriber->AllSnapshotsSeen(); }, 5.0));

  // Warm the key so version floors / caches exist, then update it.
  for (int i = 0; i < 8; ++i) {
    auto r = invoker.FetchComp(key, "p");
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(*r, std::to_string(key) + "/p/old");
  }
  ASSERT_TRUE(deploy.Seed(key, "new").ok());
  ASSERT_TRUE(WaitFor(
      [&] { return subscriber->stats().notifications >= 1; }, 5.0))
      << "update event never arrived over the stream";

  // No stale read: the next fetches converge on the new value.
  ASSERT_TRUE(WaitFor(
      [&] {
        auto r = invoker.FetchComp(key, "p");
        return r.ok() && *r == std::to_string(key) + "/p/new";
      },
      5.0))
      << "stale value survived an in-order invalidation";
}

TEST(SubscriberTest, SequenceGapAfterDroppedStreamTriggersTargetedResync) {
  ClusterDeployment deploy(EchoFn(), SmallOptions(2));
  ASSERT_TRUE(deploy.Start().ok());
  Key gap_key = KeyOwnedBy(deploy.topology(), 0);
  Key safe_key = KeyOwnedBy(deploy.topology(), 1);
  ASSERT_TRUE(deploy.Seed(gap_key, "old").ok());
  ASSERT_TRUE(deploy.Seed(safe_key, "safe").ok());

  ParallelInvokerOptions iopts;
  iopts.num_threads = 2;
  ParallelInvoker invoker(&deploy.client(), EchoFn(), iopts);
  // A wide reconnect backoff keeps the subscriber deaf long enough that a
  // write after the drop is provably lost (not just delivered late).
  UpdateSubscriberOptions sopts = FastSubscriber();
  sopts.reconnect_backoff = 400e-3;
  auto subscriber = deploy.MakeSubscriber(&invoker, sopts);
  ASSERT_TRUE(WaitFor([&] { return subscriber->AllSnapshotsSeen(); }, 5.0));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(invoker.FetchComp(gap_key, "p").ok());
    ASSERT_TRUE(invoker.FetchComp(safe_key, "p").ok());
  }

  // Sever node 0's stream, update while the subscriber is deaf (inside its
  // reconnect backoff), and let it reconnect: the fresh snapshot's
  // sequence number is ahead of the last seen, which must be detected as a
  // gap and answered with a region re-sync.
  subscriber->DropConnectionForTest(0);
  // Let the teardown land before writing, so the event is provably lost.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(deploy.Seed(gap_key, "new").ok());
  ASSERT_TRUE(
      WaitFor([&] { return subscriber->stats().gaps_detected >= 1; }, 5.0))
      << "reconnect snapshot did not surface the missed updates as a gap";
  UpdateSubscriberStats stats = subscriber->stats();
  EXPECT_GE(stats.resyncs, 1);
  EXPECT_GE(stats.reconnects, 1);
  // Targeted: only the gapped region re-synced, not one per region.
  EXPECT_LT(stats.resyncs,
            static_cast<int64_t>(deploy.topology().num_regions()));

  // No stale read after the re-sync.
  ASSERT_TRUE(WaitFor(
      [&] {
        auto r = invoker.FetchComp(gap_key, "p");
        return r.ok() && *r == std::to_string(gap_key) + "/p/new";
      },
      5.0))
      << "stale value survived the gap re-sync";
  // The safe key (other node, no gap) is untouched and still correct.
  auto safe = invoker.FetchComp(safe_key, "p");
  ASSERT_TRUE(safe.ok());
  EXPECT_EQ(*safe, std::to_string(safe_key) + "/p/safe");
}

TEST(SubscriberTest, NodeRestartBumpsEpochAndForcesResync) {
  ClusterDeployment deploy(EchoFn(), SmallOptions(1));
  ASSERT_TRUE(deploy.Start().ok());
  Key key = 3;
  ASSERT_TRUE(deploy.Seed(key, "before").ok());

  ParallelInvokerOptions iopts;
  iopts.num_threads = 2;
  ParallelInvoker invoker(&deploy.client(), EchoFn(), iopts);
  auto subscriber = deploy.MakeSubscriber(&invoker, FastSubscriber());
  ASSERT_TRUE(WaitFor([&] { return subscriber->AllSnapshotsSeen(); }, 5.0));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(invoker.FetchComp(key, "p").ok());
  }

  // Crash, write while dark (in-process: the store outlives the server),
  // restart on the same port. The epoch bump must force re-syncs even
  // though per-epoch sequence numbers restarted from zero.
  deploy.KillDataNode(0);
  ASSERT_TRUE(deploy.data_node(0).service().Put(key, "after").ok());
  ASSERT_TRUE(deploy.RestartDataNode(0).ok());

  ASSERT_TRUE(
      WaitFor([&] { return subscriber->stats().epoch_bumps >= 1; }, 10.0))
      << "restart was not observed as an epoch bump";
  EXPECT_GE(subscriber->stats().resyncs, 1);

  ASSERT_TRUE(WaitFor(
      [&] {
        auto r = invoker.FetchComp(key, "p");
        return r.ok() && *r == std::to_string(key) + "/p/after";
      },
      5.0))
      << "stale value survived a node restart";
}

}  // namespace
}  // namespace joinopt
