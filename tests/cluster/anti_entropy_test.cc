// Live anti-entropy (DESIGN.md §16): two replicas of the same region are
// forced to diverge while BOTH stay up, and the repair path — checksum
// summaries over the wire, full RegionSync on mismatch — re-converges them
// without restarting anything. Covers the deterministic SweepOnce path,
// the background timer path (convergence within repair periods), and the
// same-version tie-break that makes concurrent-writer divergence converge
// to one deterministic winner.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "joinopt/cluster/deployment.h"
#include "joinopt/net/frame.h"

namespace joinopt {
namespace {

UserFn EchoFn() {
  return [](Key key, const std::string& params, const std::string& value) {
    return std::to_string(key) + "/" + params + "/" + value;
  };
}

bool WaitFor(const std::function<bool()>& pred, double timeout_sec) {
  auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_sec));
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// Deployment with manual liveness (no controller) and the repair agent
/// started; `period` picks between timer-driven and SweepOnce-driven tests.
ClusterDeploymentOptions RepairOptions(double period) {
  ClusterDeploymentOptions opts;
  opts.topology.num_data_nodes = 3;
  opts.topology.regions_per_node = 2;
  opts.topology.replication_factor = 3;
  opts.start_controller = false;
  opts.start_anti_entropy = true;
  opts.anti_entropy.period = period;
  return opts;
}

/// True when every replica of `key`'s region reports an identical content
/// digest (count + checksum; versions are excluded by design).
bool RegionConverged(ClusterDeployment& dep, Key key) {
  int region = dep.topology().RegionOf(key);
  std::vector<NodeId> chain = dep.topology().RegionReplicas(region);
  StatusOr<RegionSummary> base =
      dep.data_node(chain[0]).service().SummarizeRegion(region);
  if (!base.ok()) return false;
  for (size_t i = 1; i < chain.size(); ++i) {
    StatusOr<RegionSummary> other =
        dep.data_node(chain[i]).service().SummarizeRegion(region);
    if (!other.ok()) return false;
    if (other->count != base->count || other->checksum != base->checksum) {
      return false;
    }
  }
  return true;
}

TEST(AntiEntropyTest, SweepRepairsDivergedLiveReplicasWithoutRestart) {
  // Huge period: the background thread never interferes, SweepOnce drives.
  ClusterDeployment dep(EchoFn(), RepairOptions(/*period=*/3600.0));
  ASSERT_TRUE(dep.Start().ok());
  ASSERT_NE(dep.anti_entropy(), nullptr);
  for (Key k = 0; k < 32; ++k) {
    ASSERT_TRUE(dep.Seed(k, "seed-" + std::to_string(k)).ok());
  }

  // Diverge: a newer write lands on ONE replica only — the shape a lost
  // fan-out or a healed partition leaves behind. Both replicas stay up.
  const Key key = 5;
  std::vector<NodeId> chain = dep.topology().ReplicasOf(key);
  ASSERT_GE(chain.size(), 2u);
  ASSERT_TRUE(dep.data_node(chain[1])
                  .service()
                  .ApplyIfNewer(key, "repaired-value", /*version=*/100));
  ASSERT_FALSE(RegionConverged(dep, key)) << "divergence was not injected";

  dep.anti_entropy()->SweepOnce();

  EXPECT_TRUE(RegionConverged(dep, key));
  for (NodeId n : chain) {
    EXPECT_TRUE(dep.data_node(n).running()) << "repair restarted node " << n;
    auto fetched = dep.data_node(n).service().Fetch(key);
    ASSERT_TRUE(fetched.ok()) << fetched.status();
    EXPECT_EQ(fetched->value, "repaired-value");
    EXPECT_GE(fetched->version, 100u);
  }
  AntiEntropyStats stats = dep.anti_entropy()->stats();
  EXPECT_GE(stats.mismatches, 1);
  EXPECT_GE(stats.syncs, 1);
  EXPECT_GE(stats.records_shipped, 1);
}

TEST(AntiEntropyTest, TimerConvergesDivergenceWithinRepairPeriods) {
  ClusterDeployment dep(EchoFn(), RepairOptions(/*period=*/50e-3));
  ASSERT_TRUE(dep.Start().ok());
  for (Key k = 0; k < 16; ++k) {
    ASSERT_TRUE(dep.Seed(k, "base-" + std::to_string(k)).ok());
  }

  const Key key = 3;
  std::vector<NodeId> chain = dep.topology().ReplicasOf(key);
  ASSERT_TRUE(dep.data_node(chain[2])
                  .service()
                  .ApplyIfNewer(key, "timer-repair", /*version=*/77));

  // One repair period is period + the sweep's RPC time; the CI bound is a
  // generous multiple so a loaded machine cannot flake it. No SweepOnce —
  // the background timer alone must do the work, with no restarts.
  EXPECT_TRUE(WaitFor([&] { return RegionConverged(dep, key); }, 5.0))
      << "replicas never re-converged under the background sweeper";
  for (NodeId n : chain) {
    EXPECT_TRUE(dep.data_node(n).running());
    auto fetched = dep.data_node(n).service().Fetch(key);
    ASSERT_TRUE(fetched.ok());
    EXPECT_EQ(fetched->value, "timer-repair");
  }
  EXPECT_GE(dep.anti_entropy()->stats().sweeps, 1);
}

TEST(AntiEntropyTest, SameVersionTieBreakConvergesToOneWinner) {
  ClusterDeployment dep(EchoFn(), RepairOptions(/*period=*/3600.0));
  ASSERT_TRUE(dep.Start().ok());
  const Key key = 9;
  ASSERT_TRUE(dep.Seed(key, "original").ok());

  // Concurrent writers can hand the SAME version to DIFFERENT values on
  // different replicas; without a deterministic tie-break the pair would
  // re-ship records forever. Lexicographically larger value must win.
  std::vector<NodeId> chain = dep.topology().ReplicasOf(key);
  ASSERT_GE(chain.size(), 2u);
  ASSERT_TRUE(
      dep.data_node(chain[0]).service().ApplyIfNewer(key, "zzz-wins", 50));
  ASSERT_TRUE(
      dep.data_node(chain[1]).service().ApplyIfNewer(key, "aaa-loses", 50));

  // Two sweeps: one to detect + sync, one to confirm quiescence.
  dep.anti_entropy()->SweepOnce();
  dep.anti_entropy()->SweepOnce();

  EXPECT_TRUE(RegionConverged(dep, key));
  for (NodeId n : chain) {
    auto fetched = dep.data_node(n).service().Fetch(key);
    ASSERT_TRUE(fetched.ok());
    EXPECT_EQ(fetched->value, "zzz-wins")
        << "replica " << n << " converged to the wrong tie-break winner";
  }

  // Quiesced: another sweep finds nothing to repair.
  AntiEntropyStats before = dep.anti_entropy()->stats();
  dep.anti_entropy()->SweepOnce();
  AntiEntropyStats after = dep.anti_entropy()->stats();
  EXPECT_EQ(after.mismatches, before.mismatches)
      << "converged replicas kept reporting digest mismatches";
}

TEST(AntiEntropyTest, RestartMergeIsTwoWayAndVersionAware) {
  // The restart catch-up path shares ApplyIfNewer with anti-entropy; this
  // pins its TWO-WAY contract: a restart both pulls writes that landed
  // while the node was dark AND pushes writes only the restarting node
  // had, without clobbering the newer side in either direction.
  ClusterDeployment dep(EchoFn(), RepairOptions(/*period=*/3600.0));
  ASSERT_TRUE(dep.Start().ok());
  const Key pulled = 12, pushed = 13;
  ASSERT_TRUE(dep.Seed(pulled, "old-a").ok());
  ASSERT_TRUE(dep.Seed(pushed, "old-b").ok());
  std::vector<NodeId> chain = dep.topology().ReplicasOf(pulled);
  NodeId victim = chain[1];
  // The restart merges each region against the first surviving replica in
  // chain order — resolve that partner for each key's own chain.
  auto merge_partner = [&](Key key) {
    for (NodeId n : dep.topology().ReplicasOf(key)) {
      if (n != victim) return n;
    }
    return kInvalidNode;
  };
  NodeId survivor = merge_partner(pulled);
  NodeId pushed_partner = merge_partner(pushed);
  ASSERT_NE(survivor, kInvalidNode);
  ASSERT_NE(pushed_partner, kInvalidNode);

  // `pushed`: only the victim has the newer value (a write whose fan-out
  // was lost just before the crash).
  ASSERT_TRUE(
      dep.data_node(victim).service().ApplyIfNewer(pushed, "victim-only", 30));

  dep.KillDataNode(victim);

  // `pulled`: written while the victim is dark — the survivor side is now
  // ahead for this key.
  ASSERT_TRUE(dep.data_node(survivor)
                  .service()
                  .ApplyIfNewer(pulled, "written-while-dark", 40));

  ASSERT_TRUE(dep.RestartDataNode(victim).ok());

  // Pull direction: the victim caught up on the missed write.
  auto got_pulled = dep.data_node(victim).service().Fetch(pulled);
  ASSERT_TRUE(got_pulled.ok());
  EXPECT_EQ(got_pulled->value, "written-while-dark");
  EXPECT_GE(got_pulled->version, 40u);
  // Push direction: the victim's exclusive newer write survived the
  // restart AND reached its merge partner.
  auto got_pushed = dep.data_node(pushed_partner).service().Fetch(pushed);
  ASSERT_TRUE(got_pushed.ok());
  EXPECT_EQ(got_pushed->value, "victim-only");
  EXPECT_GE(got_pushed->version, 30u);
  auto kept = dep.data_node(victim).service().Fetch(pushed);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->value, "victim-only");
}

}  // namespace
}  // namespace joinopt
