// ReadConsistency staleness contracts (DESIGN.md §16), including reads
// racing a region promotion: kOwnerOnly must track the chain head across a
// promotion and never dip below the durable (fully-replicated) floor,
// kQuorumVersion must survive any minority of stale replicas, and the
// PutOutcome receipt must say exactly which writes are durable — the
// contract the chaos oracle builds its floors from.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "joinopt/cluster/cluster_client.h"
#include "joinopt/cluster/deployment.h"

namespace joinopt {
namespace {

UserFn EchoFn() {
  return [](Key key, const std::string& params, const std::string& value) {
    return std::to_string(key) + "/" + params + "/" + value;
  };
}

ClusterDeploymentOptions ManualLivenessOptions() {
  ClusterDeploymentOptions opts;
  opts.topology.num_data_nodes = 3;
  opts.topology.regions_per_node = 2;
  opts.topology.replication_factor = 3;
  opts.start_controller = false;  // liveness flips are the test's to make
  return opts;
}

/// Extra client over the deployment's shared topology with its own
/// consistency mode — the deployment's own client keeps the default.
std::unique_ptr<ClusterClientService> ClientWithMode(ClusterDeployment& dep,
                                                     ReadConsistency mode) {
  ClusterClientOptions copts;
  copts.read_consistency = mode;
  copts.recovery.request_timeout = 1.0;
  copts.recovery.max_attempts = 4;
  copts.recovery.backoff_base = 2e-3;
  copts.recovery.backoff_max = 20e-3;
  return std::make_unique<ClusterClientService>(&dep.topology(), copts);
}

TEST(ConsistencyTest, QuorumVersionSurvivesMinorityOfStaleReplicas) {
  ClusterDeployment dep(EchoFn(), ManualLivenessOptions());
  ASSERT_TRUE(dep.Start().ok());
  const Key key = 4;
  ASSERT_TRUE(dep.Seed(key, "v1").ok());

  // v2 lands on two of the three replicas; the third stays stale — a
  // partitioned follower that missed the fan-out.
  std::vector<NodeId> chain = dep.topology().ReplicasOf(key);
  ASSERT_EQ(chain.size(), 3u);
  ASSERT_TRUE(dep.data_node(chain[0]).service().ApplyIfNewer(key, "v2", 10));
  ASSERT_TRUE(dep.data_node(chain[1]).service().ApplyIfNewer(key, "v2", 10));

  // Any majority of the full chain intersects {chain[0], chain[1]}, so the
  // quorum read can never surface the stale copy.
  auto quorum = ClientWithMode(dep, ReadConsistency::kQuorumVersion);
  for (int i = 0; i < 8; ++i) {
    auto fetched = quorum->Fetch(key);
    ASSERT_TRUE(fetched.ok()) << fetched.status();
    EXPECT_EQ(fetched->value, "v2");
    EXPECT_GE(fetched->version, 10u);
  }
  ClusterClientStats stats = quorum->stats();
  EXPECT_GE(stats.quorum_reads, 8);
  // The stale third replica disagreed on the version every time — each
  // disagreement is a staleness window kAny would have been exposed to.
  EXPECT_GE(stats.quorum_divergence, 1);

  // Even with one of the fresh replicas declared down (quorum = majority
  // of the FULL chain: 2 of {chain[1], chain[2]} must answer), the
  // surviving fresh copy still wins the version vote.
  dep.topology().MarkNodeDown(chain[0]);
  auto fetched = quorum->Fetch(key);
  ASSERT_TRUE(fetched.ok()) << fetched.status();
  EXPECT_EQ(fetched->value, "v2");
}

TEST(ConsistencyTest, OwnerOnlyTracksPromotionAndQuorumFindsOrphanedWrite) {
  ClusterDeployment dep(EchoFn(), ManualLivenessOptions());
  ASSERT_TRUE(dep.Start().ok());
  const Key key = 7;
  ASSERT_TRUE(dep.Seed(key, "acked").ok());
  std::vector<NodeId> chain = dep.topology().ReplicasOf(key);
  ASSERT_EQ(chain.size(), 3u);
  const NodeId old_primary = chain[0];

  // An orphaned write: v2 reached ONLY the primary before it was declared
  // dead — never fully replicated, so never durable, so no mode owes it.
  ASSERT_TRUE(
      dep.data_node(old_primary).service().ApplyIfNewer(key, "orphan", 20));

  auto owner_only = ClientWithMode(dep, ReadConsistency::kOwnerOnly);
  auto pre = owner_only->Fetch(key);
  ASSERT_TRUE(pre.ok());
  EXPECT_EQ(pre->value, "orphan") << "owner read must serve the chain head";

  // Promotion: the first live follower becomes chain head. kOwnerOnly now
  // reads the NEW primary's history — the acked (durable) write is still
  // visible, the never-acked orphan legitimately is not.
  ASSERT_GT(dep.topology().MarkNodeDown(old_primary), 0);
  const NodeId new_primary = dep.topology().ReplicasOf(key)[0];
  EXPECT_NE(new_primary, old_primary);
  auto post = owner_only->Fetch(key);
  ASSERT_TRUE(post.ok()) << post.status();
  EXPECT_EQ(post->value, "acked")
      << "promoted primary returned something other than its own history";
  EXPECT_GE(post->version, 1u);

  // The demoted node rejoins as a follower. A quorum read that counts it
  // surfaces the orphaned higher version — the receipt that quorum reads
  // dominate owner reads whenever any replica saw a newer write.
  dep.topology().MarkNodeUp(old_primary);
  auto quorum = ClientWithMode(dep, ReadConsistency::kQuorumVersion);
  auto merged = quorum->Fetch(key);
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(merged->value, "orphan");
  EXPECT_GE(merged->version, 20u);
}

TEST(ConsistencyTest, ReadsRacingPromotionNeverDipBelowDurableFloor) {
  ClusterDeployment dep(EchoFn(), ManualLivenessOptions());
  ASSERT_TRUE(dep.Start().ok());
  const Key key = 11;
  auto seeded = dep.Seed(key, "durable-floor");
  ASSERT_TRUE(seeded.ok());
  const uint64_t floor_version = *seeded;  // replicated to the full chain
  const NodeId primary = dep.topology().ReplicasOf(key)[0];

  // Hammer reads in both strict modes while the topology promotes and
  // demotes under them. Every read must succeed (the chain is re-read per
  // attempt, so a promotion between attempts redirects, not fails) and
  // must return at least the durable floor.
  std::atomic<bool> stop{false};
  std::atomic<int64_t> reads{0};
  std::atomic<int64_t> contract_violations{0};
  auto reader = [&](ReadConsistency mode) {
    auto client = ClientWithMode(dep, mode);
    while (!stop.load(std::memory_order_relaxed)) {
      auto fetched = client->Fetch(key);
      if (!fetched.ok() || fetched->version < floor_version ||
          fetched->value != "durable-floor") {
        contract_violations.fetch_add(1, std::memory_order_relaxed);
      }
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread owner_reader(reader, ReadConsistency::kOwnerOnly);
  std::thread quorum_reader(reader, ReadConsistency::kQuorumVersion);

  for (int flip = 0; flip < 20; ++flip) {
    dep.topology().MarkNodeDown(primary);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    dep.topology().MarkNodeUp(primary);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true, std::memory_order_relaxed);
  owner_reader.join();
  quorum_reader.join();

  EXPECT_GT(reads.load(), 0);
  EXPECT_EQ(contract_violations.load(), 0)
      << "a read racing promotion failed or returned less than the "
         "durable floor";
}

TEST(ConsistencyTest, PutOutcomeIsTheDurabilityReceipt) {
  ClusterDeployment dep(EchoFn(), ManualLivenessOptions());
  ASSERT_TRUE(dep.Start().ok());
  const Key key = 2;
  std::vector<NodeId> chain = dep.topology().ReplicasOf(key);
  ASSERT_EQ(chain.size(), 3u);

  // Full chain up: the write is durable — every replica acked.
  PutOutcome all_up;
  auto v1 = dep.client().Put(key, "one", &all_up);
  ASSERT_TRUE(v1.ok()) << v1.status();
  EXPECT_EQ(all_up.replicas_acked, 3);
  EXPECT_EQ(all_up.replicas_skipped, 0);
  EXPECT_EQ(all_up.replicas_failed, 0);
  EXPECT_TRUE(all_up.fully_replicated());
  EXPECT_EQ(all_up.primary_version, *v1);

  // A follower marked down is SKIPPED (a re-sync is owed), so the outcome
  // must refuse to call the write durable — the oracle treats it as acked
  // but not a floor.
  dep.topology().MarkNodeDown(chain[2]);
  PutOutcome degraded;
  auto v2 = dep.client().Put(key, "two", &degraded);
  ASSERT_TRUE(v2.ok()) << v2.status();
  EXPECT_EQ(degraded.replicas_skipped, 1);
  EXPECT_GE(degraded.replicas_acked, 2);
  EXPECT_FALSE(degraded.fully_replicated());
}

}  // namespace
}  // namespace joinopt
