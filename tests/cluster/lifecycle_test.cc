// Regression tests for the two lifecycle races the lock-discipline audit
// (DESIGN.md §12) surfaced and fixed:
//
//   1. RpcServer::Start was check-then-act on running_: two concurrent
//      Start() calls could both pass the check and race the bind. Start
//      and Stop now serialize on lifecycle_mu_, so exactly one concurrent
//      Start wins and the rest get FailedPrecondition.
//   2. ClusterDataNode::running()/port()/server() read the server_
//      unique_ptr with no lock while Restart() swapped it — a probe
//      landing mid-swap dereferenced a half-dead pointer. All lifecycle
//      state now sits under lifecycle_mu_, with Restart one critical
//      section end to end.
//
// Both tests hammer the old windows from many threads; under TSan (the CI
// tsan job runs this binary) the pre-fix code reports a race here.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "joinopt/cluster/data_node.h"
#include "joinopt/cluster/topology.h"
#include "joinopt/net/rpc_server.h"
#include "joinopt/store/log_store.h"

namespace joinopt {
namespace {

UserFn EchoFn() {
  return [](Key key, const std::string& params, const std::string& value) {
    return std::to_string(key) + "/" + params + "/" + value;
  };
}

TEST(LifecycleTest, ConcurrentServerStartsAdmitExactlyOne) {
  ClusterTopologyConfig config;
  config.num_data_nodes = 1;
  ClusterTopology topology(config);
  ClusterNodeService service(0, &topology);

  constexpr int kRounds = 8;
  constexpr int kStarters = 4;
  for (int round = 0; round < kRounds; ++round) {
    RpcServer server(&service, EchoFn());
    std::atomic<int> ok{0};
    std::atomic<int> precondition{0};
    std::vector<std::thread> starters;
    starters.reserve(kStarters);
    for (int i = 0; i < kStarters; ++i) {
      starters.emplace_back([&] {
        Status s = server.Start();
        if (s.ok()) {
          ok.fetch_add(1);
        } else if (s.code() == StatusCode::kFailedPrecondition) {
          precondition.fetch_add(1);
        }
      });
    }
    for (auto& t : starters) t.join();
    // Exactly one bind; every loser sees the documented in-band error,
    // never a second acceptor or an EADDRINUSE from a raced bind.
    EXPECT_EQ(ok.load(), 1) << "round " << round;
    EXPECT_EQ(precondition.load(), kStarters - 1) << "round " << round;
    EXPECT_TRUE(server.running());
    EXPECT_NE(server.port(), 0);
    server.Stop();
    EXPECT_FALSE(server.running());
  }
}

TEST(LifecycleTest, ProbesDuringRestartNeverSeeHalfSwappedServer) {
  ClusterTopologyConfig config;
  config.num_data_nodes = 1;
  config.regions_per_node = 2;
  config.replication_factor = 1;
  ClusterTopology topology(config);
  ClusterDataNode node(0, &topology, EchoFn());
  ASSERT_TRUE(node.Start().ok());
  const uint16_t port = node.port();
  ASSERT_NE(port, 0);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> probes{0};
  std::vector<std::thread> probers;
  for (int i = 0; i < 4; ++i) {
    probers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        // The old code dereferenced server_ unlocked here, racing the
        // unique_ptr reset in Restart; any torn read crashes the test.
        bool running = node.running();
        uint16_t p = node.port();
        const RpcServer* server = node.server();
        if (running) {
          EXPECT_EQ(p, port);  // restart pins the port
          EXPECT_NE(server, nullptr);
        }
        probes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(node.Restart().ok());
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : probers) t.join();
  EXPECT_GT(probes.load(), 0);
  EXPECT_TRUE(node.running());
  EXPECT_EQ(node.port(), port);
  node.Stop();
  EXPECT_FALSE(node.running());
}

}  // namespace
}  // namespace joinopt
