// Figure 8 (a/b/c): Hadoop-style batch runs of the synthetic workloads —
// normalized completion time vs. Zipf skew for NO, FC, FD, FR, CO, LO, FO.
// Time is normalized to NO at skew 0 within each workload (the paper's
// presentation). Lower is better.
#include <vector>

#include "bench_common.h"
#include "joinopt/workload/synthetic.h"

namespace joinopt {
namespace bench {
namespace {

void RunWorkload(SyntheticKind kind, const char* expectation) {
  const double scale = BenchScale();
  const std::vector<double> skews = {0.0, 0.5, 1.0, 1.5};
  const std::vector<Strategy> strategies = {
      Strategy::kNO, Strategy::kFC, Strategy::kFD, Strategy::kFR,
      Strategy::kCO, Strategy::kLO, Strategy::kFO};

  FrameworkRunConfig run;
  run.cluster = PaperCluster();
  run.engine = PaperEngine();
  // The paper sizes the stored data at ~10x the data nodes' combined RAM
  // ("the total amount of data is more than the combined memory capacity"),
  // so data-node reads are cold. Model that by disabling the block cache.
  run.engine.data_node_block_cache_bytes = 0;
  NodeLayout layout =
      NodeLayout::Of(run.cluster.num_compute_nodes,
                     run.cluster.num_data_nodes);

  PrintHeader(std::string("Figure 8: synthetic workload ") +
                  SyntheticKindToString(kind) + " on Hadoop (batch)",
              expectation);

  // One workload per skew, shared across strategies.
  std::vector<GeneratedWorkload> workloads;
  for (double z : skews) {
    SyntheticConfig cfg;
    cfg.kind = kind;
    cfg.zipf_z = z;
    cfg.tuples_per_node = static_cast<int>(3000 * scale);
    cfg.num_keys = static_cast<int>(50000 * scale);
    workloads.push_back(MakeSyntheticWorkload(cfg, layout));
  }

  std::vector<std::vector<double>> times(
      strategies.size(), std::vector<double>(skews.size(), 0.0));
  for (size_t s = 0; s < strategies.size(); ++s) {
    for (size_t zi = 0; zi < skews.size(); ++zi) {
      JobResult r = RunFrameworkJob(workloads[zi], strategies[s], run);
      times[s][zi] = r.makespan;
    }
  }
  double baseline = times[0][0];  // NO at z=0

  std::vector<std::string> header = {"strategy"};
  for (double z : skews) header.push_back("z=" + FormatDouble(z, 1));
  ReportTable table(header);
  for (size_t s = 0; s < strategies.size(); ++s) {
    table.AddNumericRow(StrategyToString(strategies[s]),
                        NormalizeBy(times[s], baseline), 3);
  }
  table.Print(std::string("Normalized time (NO @ z=0 := 1), workload ") +
              SyntheticKindToString(kind));
}

}  // namespace
}  // namespace bench
}  // namespace joinopt

int main() {
  using namespace joinopt;
  using namespace joinopt::bench;
  RunWorkload(SyntheticKind::kDataHeavy,
              "FD~FO at z=0 (FO pays small estimation overhead); FO/CO best "
              "at high skew via caching; LO slightly better at z=0, worse at "
              "high z; NO worst overall");
  RunWorkload(SyntheticKind::kComputeHeavy,
              "FR best at z=0 then collapses with skew; FD degrades with "
              "skew; LO/FO balanced at all skews; FO dips slightly at z=1.5 "
              "(cached work concentrates on compute nodes)");
  RunWorkload(SyntheticKind::kDataComputeHeavy,
              "FO best across all skews; CO improves with skew (caching); "
              "LO degrades with skew (no caching); FR overloads hot data "
              "nodes as skew rises");
  return 0;
}
