// Figure 11 (a/b/c): synthetic workloads on the Muppet-style stream engine —
// normalized throughput (tuples/s relative to NO at skew 0) vs. Zipf skew
// for NO, FC, FD, FR, FO. Higher is better.
//
// Paper shape: mirrors Fig. 8 in throughput — FD collapses with skew, FO
// best or near-best everywhere, FC > NO at all skews.
#include <vector>

#include "bench_common.h"
#include "joinopt/stream/muppet.h"
#include "joinopt/workload/synthetic.h"

namespace joinopt {
namespace bench {
namespace {

void RunWorkload(SyntheticKind kind, const char* expectation) {
  const double scale = BenchScale();
  const std::vector<double> skews = {0.0, 0.5, 1.0, 1.5};
  const std::vector<Strategy> strategies = {Strategy::kNO, Strategy::kFC,
                                            Strategy::kFD, Strategy::kFR,
                                            Strategy::kFO};
  FrameworkRunConfig run;
  run.cluster = PaperCluster();
  run.engine = PaperEngine();
  // Cold-read regime: the stored data exceeds cluster memory (see fig8).
  run.engine.data_node_block_cache_bytes = 0;
  NodeLayout layout = NodeLayout::Of(run.cluster.num_compute_nodes,
                                     run.cluster.num_data_nodes);

  PrintHeader(std::string("Figure 11: synthetic workload ") +
                  SyntheticKindToString(kind) + " on Muppet (stream)",
              expectation);

  std::vector<GeneratedWorkload> workloads;
  for (double z : skews) {
    SyntheticConfig cfg;
    cfg.kind = kind;
    cfg.zipf_z = z;
    cfg.tuples_per_node = static_cast<int>(3000 * scale);
    cfg.num_keys = static_cast<int>(50000 * scale);
    workloads.push_back(MakeSyntheticWorkload(cfg, layout));
  }

  std::vector<std::vector<double>> tput(
      strategies.size(), std::vector<double>(skews.size(), 0.0));
  for (size_t s = 0; s < strategies.size(); ++s) {
    for (size_t zi = 0; zi < skews.size(); ++zi) {
      MuppetRunResult r = RunMuppetStream(workloads[zi], strategies[s], run);
      tput[s][zi] = r.items_per_second;
    }
  }
  double baseline = tput[0][0];  // NO at z=0

  std::vector<std::string> header = {"strategy"};
  for (double z : skews) header.push_back("z=" + FormatDouble(z, 1));
  ReportTable table(header);
  for (size_t s = 0; s < strategies.size(); ++s) {
    table.AddNumericRow(StrategyToString(strategies[s]),
                        NormalizeBy(tput[s], baseline), 3);
  }
  table.Print(std::string("Normalized throughput (NO @ z=0 := 1), workload ") +
              SyntheticKindToString(kind));
}

}  // namespace
}  // namespace bench
}  // namespace joinopt

int main() {
  using namespace joinopt;
  using namespace joinopt::bench;
  RunWorkload(SyntheticKind::kDataHeavy,
              "FD high at z=0 then falls with skew; FO rises with skew "
              "(caching); NO/FC/FR fall with skew");
  RunWorkload(SyntheticKind::kComputeHeavy,
              "FR best at low skew, falls steeply; FO best at high skew");
  RunWorkload(SyntheticKind::kDataComputeHeavy,
              "FO best or near-best at all skews (balances CPU and network, "
              "caches frequent items)");
  return 0;
}
