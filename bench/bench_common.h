// Shared configuration for the figure-reproduction benches. Scale knob:
// JOINOPT_BENCH_SCALE (default 1.0) multiplies workload sizes so quick
// sanity runs (0.2) and heavier runs (4.0) use the same binaries.
#ifndef JOINOPT_BENCH_BENCH_COMMON_H_
#define JOINOPT_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "joinopt/common/histogram.h"
#include "joinopt/common/units.h"
#include "joinopt/harness/runner.h"
#include "joinopt/harness/report.h"

namespace joinopt {
namespace bench {

inline double BenchScale() {
  const char* env = std::getenv("JOINOPT_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

/// The paper's testbed: 20 nodes (10 compute + 10 data for framework runs),
/// two quad-core Xeons (8 cores), 1 Gbps Ethernet, SSD-like effective disk
/// (Section 9's note that the disk cache behaves like an SSD).
inline ClusterConfig PaperCluster() {
  ClusterConfig c;
  c.num_compute_nodes = 10;
  c.num_data_nodes = 10;
  c.machine.cores = 8;
  c.machine.disk.seek_time = 100e-6;
  c.machine.disk.bandwidth_bytes_per_sec = 200e6;
  c.network.bandwidth_bytes_per_sec = 125e6;  // 1 Gbps
  c.network.latency = 100e-6;
  return c;
}

/// Engine defaults matching Section 9: 100 MB memory cache, batch size 64.
inline EngineConfig PaperEngine() {
  EngineConfig e;
  e.decision.cache.memory_capacity_bytes = 100.0 * 1024 * 1024;
  return e;
}

/// Latency distribution for bench reporting: p50/p99/p999 over log-spaced
/// buckets (1 us .. 10 s, ~12% wide), reusing common/histogram.h's
/// interpolating Quantile. Tail percentiles are what the serving-backend
/// comparisons care about — means hide a stalled connection entirely.
class LatencyRecorder {
 public:
  LatencyRecorder() : hist_(LogBounds()) {}

  void Observe(double seconds) { hist_.Observe(seconds); }

  double p50() const { return hist_.Quantile(0.50); }
  double p99() const { return hist_.Quantile(0.99); }
  double p999() const { return hist_.Quantile(0.999); }
  int64_t count() const { return hist_.stats().count(); }
  double mean() const { return hist_.stats().mean(); }

  /// One human-readable line: "<label>  p50=... p99=... p999=..." in us.
  void PrintLine(const char* label) const {
    std::printf("%-34s p50=%9.1f us  p99=%9.1f us  p999=%9.1f us\n", label,
                p50() * 1e6, p99() * 1e6, p999() * 1e6);
  }

  /// JSON fields (no surrounding braces): "<prefix>_p50_seconds": ... —
  /// callers splice this into their own objects.
  void JsonFields(FILE* f, const char* prefix) const {
    std::fprintf(f,
                 "\"%s_p50_seconds\": %.6e, \"%s_p99_seconds\": %.6e, "
                 "\"%s_p999_seconds\": %.6e",
                 prefix, p50(), prefix, p99(), prefix, p999());
  }

 private:
  static std::vector<double> LogBounds() {
    std::vector<double> bounds;
    for (double v = 1e-6; v < 10.0; v *= 1.12) bounds.push_back(v);
    return bounds;
  }
  Histogram hist_;
};

inline void PrintHeader(const std::string& figure,
                        const std::string& paper_expectation) {
  std::printf("\n############################################################\n");
  std::printf("# %s\n", figure.c_str());
  std::printf("# Paper expectation: %s\n", paper_expectation.c_str());
  std::printf("# (scale=%.2f; set JOINOPT_BENCH_SCALE to change)\n",
              BenchScale());
  std::printf("############################################################\n");
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace joinopt

#endif  // JOINOPT_BENCH_BENCH_COMMON_H_
