// Fault-injection & recovery: a data-heavy FO run where one data node
// crashes mid-join (and later restarts) while a second node's disk
// straggles. With replication >= 2 the job must finish with zero lost or
// duplicated tuples; the bench reports the recovery cost (makespan blowup,
// timeouts/retries/failovers), a throughput time-series showing the dip and
// recovery, and a determinism check (same seed + schedule => identical run).
#include <memory>
#include <vector>

#include "bench_common.h"
#include "joinopt/workload/synthetic.h"

namespace joinopt {
namespace bench {
namespace {

JobResult RunWithFaults(const GeneratedWorkload& workload, Strategy strategy,
                        const FrameworkRunConfig& base,
                        const FaultSchedule& faults) {
  FrameworkRunConfig run = base;
  run.faults = faults;
  return RunFrameworkJob(workload, strategy, run);
}

/// The same run as RunFrameworkJob, but with a tracer sampling the fault &
/// recovery gauges so we can see the throughput dip and the self-healing.
void TraceFaultRun(const GeneratedWorkload& workload, Strategy strategy,
                   const FrameworkRunConfig& base, const FaultSchedule& faults,
                   double sample_interval) {
  Simulation sim;
  Cluster cluster(base.cluster);
  EngineConfig engine = base.engine;
  engine.computed_value_bytes = workload.computed_value_bytes;
  if (!workload.stage_selectivity.empty()) {
    engine.stage_selectivity = workload.stage_selectivity;
  }
  engine.recovery.enabled = true;
  JoinJob job(&sim, &cluster, workload.store_ptrs(), strategy, engine);
  FaultInjector injector(&sim, &cluster, faults);
  job.AttachFaultInjector(&injector);
  injector.Arm();
  for (size_t i = 0; i < workload.inputs.size(); ++i) {
    job.SetInput(static_cast<int>(i), workload.inputs[i]);
  }
  Tracer tracer(&sim, sample_interval);
  AddFaultRecoveryGauges(&tracer, &job, &injector);
  tracer.Start();
  JobResult r = job.Run();

  // Gauge columns (AddFaultRecoveryGauges order): 0 = tuples_done,
  // 1 = timeouts, 2 = retries, 3 = failovers, 4 = hedges_won,
  // 5 = tuples_failed, 6 = messages_dropped, 7 = nodes_down.
  ReportTable table({"t(s)", "done", "done/s", "nodes_down", "dropped",
                     "timeouts", "retries", "failovers"});
  // Leftover timeout timers keep the simulator (and the tracer) alive past
  // the makespan; stop the table at the first idle sample after completion.
  double final_done = tracer.num_samples() == 0
                          ? 0.0
                          : tracer.value_at(tracer.num_samples() - 1, 0);
  double prev_done = 0.0;
  bool tail_printed = false;
  for (size_t s = 0; s < tracer.num_samples(); ++s) {
    double done = tracer.value_at(s, 0);
    double rate = s == 0 ? 0.0 : (done - prev_done) / sample_interval;
    if (done == final_done && rate == 0.0 && s > 0) {
      if (tail_printed) break;
      tail_printed = true;
    }
    prev_done = done;
    table.AddRow({FormatDouble(tracer.time_at(s), 3), FormatDouble(done, 0),
                  FormatDouble(rate, 0), FormatDouble(tracer.value_at(s, 7), 0),
                  FormatDouble(tracer.value_at(s, 6), 0),
                  FormatDouble(tracer.value_at(s, 1), 0),
                  FormatDouble(tracer.value_at(s, 2), 0),
                  FormatDouble(tracer.value_at(s, 3), 0)});
  }
  table.Print("Throughput dip & recovery (sampled gauges, cumulative counters)");
  std::printf("  traced run: makespan=%.3fs processed=%lld failed=%lld\n",
              r.makespan, static_cast<long long>(r.tuples_processed),
              static_cast<long long>(r.recovery.tuples_failed));
}

void AddResultRow(ReportTable& table, const char* label, const JobResult& r,
                  double baseline) {
  table.AddRow({label, FormatDouble(r.makespan, 3),
                FormatDouble(r.makespan / baseline, 2),
                FormatDouble(static_cast<double>(r.tuples_processed), 0),
                FormatDouble(static_cast<double>(r.recovery.tuples_failed), 0),
                FormatDouble(static_cast<double>(r.messages_dropped), 0),
                FormatDouble(static_cast<double>(r.recovery.timeouts), 0),
                FormatDouble(static_cast<double>(r.recovery.retries), 0),
                FormatDouble(static_cast<double>(r.recovery.failovers), 0)});
}

}  // namespace
}  // namespace bench
}  // namespace joinopt

int main() {
  using namespace joinopt;
  using namespace joinopt::bench;
  const double scale = BenchScale();
  const Strategy strategy = Strategy::kFO;

  PrintHeader(
      "Fault injection & recovery: crash + restart + straggler under FO",
      "crash of a replicated data node mid-join completes with zero "
      "lost/duplicated tuples at a modest makespan cost; throughput dips "
      "while the node is down and recovers after failover/restart; two runs "
      "with the same seed + schedule are identical");

  FrameworkRunConfig run;
  run.cluster = PaperCluster();
  run.engine = PaperEngine();
  // Keep the data-node block cache on: a retried read served from cache
  // instead of a second cold disk pass is what keeps a timeout burst from
  // snowballing into a retry storm.
  NodeLayout layout = NodeLayout::Of(run.cluster.num_compute_nodes,
                                     run.cluster.num_data_nodes);

  SyntheticConfig cfg;
  cfg.kind = SyntheticKind::kDataHeavy;
  cfg.zipf_z = 0.5;
  cfg.tuples_per_node = static_cast<int>(2000 * scale);
  cfg.num_keys = static_cast<int>(20000 * scale);
  cfg.replication_factor = 2;  // lets reads fail over when a node dies
  GeneratedWorkload workload = MakeSyntheticWorkload(cfg, layout);

  // Fault-free reference (replication in place, no faults, recovery off).
  JobResult clean = RunFrameworkJob(workload, strategy, run);
  double baseline = clean.makespan;
  std::printf("fault-free baseline: makespan=%.3fs, %lld tuples\n", baseline,
              static_cast<long long>(clean.tuples_processed));

  // Node ids: data node j is cluster node (num_compute_nodes + j).
  const NodeId dn0 = run.cluster.num_compute_nodes;
  const NodeId dn1 = dn0 + 1;
  FaultSchedule crash_only;
  crash_only.CrashNode(0.3 * baseline, dn0);
  FaultSchedule crash_restart;
  crash_restart.CrashNode(0.3 * baseline, dn0).RestartNode(0.6 * baseline, dn0);
  FaultSchedule straggler;
  straggler.SlowDisk(0.2 * baseline, dn1, 4.0)
      .RestoreDisk(0.7 * baseline, dn1);

  JobResult crashed = RunWithFaults(workload, strategy, run, crash_only);
  JobResult healed = RunWithFaults(workload, strategy, run, crash_restart);
  JobResult slowed = RunWithFaults(workload, strategy, run, straggler);

  ReportTable table({"run", "makespan", "norm", "processed", "failed",
                     "dropped", "timeouts", "retries", "failovers"});
  AddResultRow(table, "no faults", clean, baseline);
  AddResultRow(table, "crash (no restart)", crashed, baseline);
  AddResultRow(table, "crash + restart", healed, baseline);
  AddResultRow(table, "straggler disk (4x)", slowed, baseline);
  table.Print("Recovery cost (makespan normalized to fault-free)");

  // Determinism: identical seed + schedule must reproduce every metric.
  JobResult again = RunWithFaults(workload, strategy, run, crash_restart);
  bool identical = again.makespan == healed.makespan &&
                   again.tuples_processed == healed.tuples_processed &&
                   again.network_bytes == healed.network_bytes &&
                   again.sim_events == healed.sim_events &&
                   again.recovery.timeouts == healed.recovery.timeouts &&
                   again.recovery.retries == healed.recovery.retries &&
                   again.recovery.failovers == healed.recovery.failovers &&
                   again.messages_dropped == healed.messages_dropped;
  std::printf("determinism check (same seed + schedule, re-run): %s\n",
              identical ? "IDENTICAL" : "DIVERGED (bug!)");

  TraceFaultRun(workload, strategy, run, crash_restart, baseline / 10.0);
  return 0;
}
