// Fault-injection & recovery: a data-heavy FO run where one data node
// crashes mid-join (and later restarts) while a second node's disk
// straggles. With replication >= 2 the job must finish with zero lost or
// duplicated tuples; the bench reports the recovery cost (makespan blowup,
// timeouts/retries/failovers), a throughput time-series showing the dip and
// recovery, and a determinism check (same seed + schedule => identical run).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "joinopt/cluster/compute_group.h"
#include "joinopt/cluster/deployment.h"
#include "joinopt/workload/synthetic.h"

namespace joinopt {
namespace bench {
namespace {

double WallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// What the networked (real sockets, real kill) mode measures.
struct NetworkedResult {
  double wall_seconds = 0.0;
  double detection_seconds = -1.0;  ///< kill -> controller marks node down
  int64_t items_ok = 0;
  int64_t items_failed = 0;
  ClusterClientStats client;
  RecoveryCounters recovery;
  ClusterControllerStats controller;
  ComputeWorkerGroupStats group;
  std::vector<StatusOr<std::string>> outputs;
};

/// Maps a paper Strategy onto the live invoker: the simulator's
/// StrategyTraits become a forced decision route (NO/FC/FD/FR), a caching
/// toggle (LO/FD run with zero cache), and prefetch/batching depths — so
/// the same seven-way comparison the figures model runs over real sockets.
ParallelInvokerOptions InvokerFor(Strategy strategy) {
  StrategyTraits traits = StrategyTraits::For(strategy);
  ParallelInvokerOptions o;
  o.num_threads = 2;
  if (traits.always_fetch) o.decision.forced_route = ForcedRoute::kFetch;
  if (traits.always_compute) o.decision.forced_route = ForcedRoute::kCompute;
  if (traits.random_choice) o.decision.forced_route = ForcedRoute::kRandom;
  if (!traits.caching) {
    o.decision.caching_enabled = false;
    o.decision.cache.memory_capacity_bytes = 0;
    o.decision.cache.disk_capacity_bytes = 0;
  }
  if (!traits.batching) o.delegation_batch_size = 1;
  if (!traits.prefetch) {
    o.num_threads = 1;
    o.queue_capacity = 1;
  }
  return o;
}

/// One ClusterDeployment run over loopback TCP: `items` pushed through a
/// ComputeWorkerGroup; when `kill_node >= 0` that data node's RpcServer is
/// stopped (a real listener going dark, not a simulator flag) once
/// `kill_after` seconds of the join have elapsed.
NetworkedResult RunNetworked(
    const std::vector<std::pair<Key, std::string>>& items, int num_keys,
    int kill_node, double kill_after, Strategy strategy) {
  StrategyTraits traits = StrategyTraits::For(strategy);
  ClusterDeploymentOptions opts;
  opts.topology.num_data_nodes = 3;
  opts.topology.regions_per_node = 4;
  opts.topology.replication_factor = 2;
  opts.client.recovery.backoff_base = 2e-3;
  opts.client.recovery.backoff_max = 20e-3;
  opts.client.recovery.max_attempts = 6;
  // p2c read balancing is the networked analog of the LB trait.
  opts.client.balance_reads = traits.load_balancing;
  opts.controller.probe_interval = 10e-3;
  opts.controller.recovery.request_timeout = 100e-3;
  opts.controller.recovery.max_attempts = 3;

  UserFn fn = [](Key key, const std::string& params,
                 const std::string& value) {
    return std::to_string(key) + "/" + params + "/" + value;
  };
  ClusterDeployment deploy(fn, opts);
  NetworkedResult out;
  Status started = deploy.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "networked deployment failed to start: %s\n",
                 started.ToString().c_str());
    return out;
  }
  for (Key k = 0; k < static_cast<Key>(num_keys); ++k) {
    (void)deploy.Seed(k, "v-" + std::to_string(k));
  }

  ComputeWorkerGroupOptions gopts;
  gopts.num_workers = 3;
  gopts.claim_window = traits.prefetch ? 8 : 1;
  gopts.invoker = InvokerFor(strategy);
  ComputeWorkerGroup group(&deploy.client(), fn, gopts);

  std::thread killer;
  std::atomic<double> detection{-1.0};
  double t0 = WallSeconds();
  if (kill_node >= 0) {
    killer = std::thread([&deploy, &detection, kill_node, kill_after] {
      std::this_thread::sleep_for(std::chrono::duration<double>(kill_after));
      double killed_at = WallSeconds();
      deploy.KillDataNode(kill_node);
      // Poll until the controller's strikes declare the node dead; this
      // window (server dark -> topology updated) is the detection latency.
      while (deploy.topology().NodeUp(kill_node)) {
        if (WallSeconds() - killed_at > 30.0) return;  // give up, report -1
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      detection.store(WallSeconds() - killed_at);
    });
  }
  out.outputs = group.Run(items);
  out.wall_seconds = WallSeconds() - t0;
  if (killer.joinable()) killer.join();
  out.detection_seconds = detection.load();
  for (const auto& r : out.outputs) {
    if (r.ok()) {
      ++out.items_ok;
    } else {
      ++out.items_failed;
    }
  }
  out.client = deploy.client().stats();
  out.recovery = deploy.client().recovery_counters();
  if (deploy.controller() != nullptr) {
    out.controller = deploy.controller()->stats();
  }
  out.group = group.stats();
  return out;
}

JobResult RunWithFaults(const GeneratedWorkload& workload, Strategy strategy,
                        const FrameworkRunConfig& base,
                        const FaultSchedule& faults) {
  FrameworkRunConfig run = base;
  run.faults = faults;
  return RunFrameworkJob(workload, strategy, run);
}

/// The same run as RunFrameworkJob, but with a tracer sampling the fault &
/// recovery gauges so we can see the throughput dip and the self-healing.
void TraceFaultRun(const GeneratedWorkload& workload, Strategy strategy,
                   const FrameworkRunConfig& base, const FaultSchedule& faults,
                   double sample_interval) {
  Simulation sim;
  Cluster cluster(base.cluster);
  EngineConfig engine = base.engine;
  engine.computed_value_bytes = workload.computed_value_bytes;
  if (!workload.stage_selectivity.empty()) {
    engine.stage_selectivity = workload.stage_selectivity;
  }
  engine.recovery.enabled = true;
  JoinJob job(&sim, &cluster, workload.store_ptrs(), strategy, engine);
  FaultInjector injector(&sim, &cluster, faults);
  job.AttachFaultInjector(&injector);
  injector.Arm();
  for (size_t i = 0; i < workload.inputs.size(); ++i) {
    job.SetInput(static_cast<int>(i), workload.inputs[i]);
  }
  Tracer tracer(&sim, sample_interval);
  AddFaultRecoveryGauges(&tracer, &job, &injector);
  tracer.Start();
  JobResult r = job.Run();

  // Gauge columns (AddFaultRecoveryGauges order): 0 = tuples_done,
  // 1 = timeouts, 2 = retries, 3 = failovers, 4 = hedges_won,
  // 5 = tuples_failed, 6 = messages_dropped, 7 = nodes_down.
  ReportTable table({"t(s)", "done", "done/s", "nodes_down", "dropped",
                     "timeouts", "retries", "failovers"});
  // Leftover timeout timers keep the simulator (and the tracer) alive past
  // the makespan; stop the table at the first idle sample after completion.
  double final_done = tracer.num_samples() == 0
                          ? 0.0
                          : tracer.value_at(tracer.num_samples() - 1, 0);
  double prev_done = 0.0;
  bool tail_printed = false;
  for (size_t s = 0; s < tracer.num_samples(); ++s) {
    double done = tracer.value_at(s, 0);
    double rate = s == 0 ? 0.0 : (done - prev_done) / sample_interval;
    if (done == final_done && rate == 0.0 && s > 0) {
      if (tail_printed) break;
      tail_printed = true;
    }
    prev_done = done;
    table.AddRow({FormatDouble(tracer.time_at(s), 3), FormatDouble(done, 0),
                  FormatDouble(rate, 0), FormatDouble(tracer.value_at(s, 7), 0),
                  FormatDouble(tracer.value_at(s, 6), 0),
                  FormatDouble(tracer.value_at(s, 1), 0),
                  FormatDouble(tracer.value_at(s, 2), 0),
                  FormatDouble(tracer.value_at(s, 3), 0)});
  }
  table.Print("Throughput dip & recovery (sampled gauges, cumulative counters)");
  std::printf("  traced run: makespan=%.3fs processed=%lld failed=%lld\n",
              r.makespan, static_cast<long long>(r.tuples_processed),
              static_cast<long long>(r.recovery.tuples_failed));
}

void AddResultRow(ReportTable& table, const char* label, const JobResult& r,
                  double baseline) {
  table.AddRow({label, FormatDouble(r.makespan, 3),
                FormatDouble(r.makespan / baseline, 2),
                FormatDouble(static_cast<double>(r.tuples_processed), 0),
                FormatDouble(static_cast<double>(r.recovery.tuples_failed), 0),
                FormatDouble(static_cast<double>(r.messages_dropped), 0),
                FormatDouble(static_cast<double>(r.recovery.timeouts), 0),
                FormatDouble(static_cast<double>(r.recovery.retries), 0),
                FormatDouble(static_cast<double>(r.recovery.failovers), 0)});
}

}  // namespace
}  // namespace bench
}  // namespace joinopt

int main() {
  using namespace joinopt;
  using namespace joinopt::bench;
  const double scale = BenchScale();
  const Strategy strategy = Strategy::kFO;

  PrintHeader(
      "Fault injection & recovery: crash + restart + straggler under FO",
      "crash of a replicated data node mid-join completes with zero "
      "lost/duplicated tuples at a modest makespan cost; throughput dips "
      "while the node is down and recovers after failover/restart; two runs "
      "with the same seed + schedule are identical");

  FrameworkRunConfig run;
  run.cluster = PaperCluster();
  run.engine = PaperEngine();
  // Keep the data-node block cache on: a retried read served from cache
  // instead of a second cold disk pass is what keeps a timeout burst from
  // snowballing into a retry storm.
  NodeLayout layout = NodeLayout::Of(run.cluster.num_compute_nodes,
                                     run.cluster.num_data_nodes);

  SyntheticConfig cfg;
  cfg.kind = SyntheticKind::kDataHeavy;
  cfg.zipf_z = 0.5;
  cfg.tuples_per_node = static_cast<int>(2000 * scale);
  cfg.num_keys = static_cast<int>(20000 * scale);
  cfg.replication_factor = 2;  // lets reads fail over when a node dies
  GeneratedWorkload workload = MakeSyntheticWorkload(cfg, layout);

  // Fault-free reference (replication in place, no faults, recovery off).
  JobResult clean = RunFrameworkJob(workload, strategy, run);
  double baseline = clean.makespan;
  std::printf("fault-free baseline: makespan=%.3fs, %lld tuples\n", baseline,
              static_cast<long long>(clean.tuples_processed));

  // Node ids: data node j is cluster node (num_compute_nodes + j).
  const NodeId dn0 = run.cluster.num_compute_nodes;
  const NodeId dn1 = dn0 + 1;
  FaultSchedule crash_only;
  crash_only.CrashNode(0.3 * baseline, dn0);
  FaultSchedule crash_restart;
  crash_restart.CrashNode(0.3 * baseline, dn0).RestartNode(0.6 * baseline, dn0);
  FaultSchedule straggler;
  straggler.SlowDisk(0.2 * baseline, dn1, 4.0)
      .RestoreDisk(0.7 * baseline, dn1);

  JobResult crashed = RunWithFaults(workload, strategy, run, crash_only);
  JobResult healed = RunWithFaults(workload, strategy, run, crash_restart);
  JobResult slowed = RunWithFaults(workload, strategy, run, straggler);

  ReportTable table({"run", "makespan", "norm", "processed", "failed",
                     "dropped", "timeouts", "retries", "failovers"});
  AddResultRow(table, "no faults", clean, baseline);
  AddResultRow(table, "crash (no restart)", crashed, baseline);
  AddResultRow(table, "crash + restart", healed, baseline);
  AddResultRow(table, "straggler disk (4x)", slowed, baseline);
  table.Print("Recovery cost (makespan normalized to fault-free)");

  // Determinism: identical seed + schedule must reproduce every metric.
  JobResult again = RunWithFaults(workload, strategy, run, crash_restart);
  bool identical = again.makespan == healed.makespan &&
                   again.tuples_processed == healed.tuples_processed &&
                   again.network_bytes == healed.network_bytes &&
                   again.sim_events == healed.sim_events &&
                   again.recovery.timeouts == healed.recovery.timeouts &&
                   again.recovery.retries == healed.recovery.retries &&
                   again.recovery.failovers == healed.recovery.failovers &&
                   again.messages_dropped == healed.messages_dropped;
  std::printf("determinism check (same seed + schedule, re-run): %s\n",
              identical ? "IDENTICAL" : "DIVERGED (bug!)");

  TraceFaultRun(workload, strategy, run, crash_restart, baseline / 10.0);

  // ---- networked mode: real RpcServers on loopback, a real kill ---------
  // The simulator above models the crash; here a genuine listener goes
  // dark mid-join and the whole stack — controller strikes, region
  // promotion, client failover, tagged-batch dedup — has to recover it.
  std::printf("\nnetworked mode: 3 data nodes (rf=2) over loopback TCP\n");
  const int net_keys = 256;
  const int net_items = static_cast<int>(3000 * scale);
  std::vector<std::pair<Key, std::string>> items;
  items.reserve(static_cast<size_t>(net_items));
  for (int i = 0; i < net_items; ++i) {
    items.emplace_back(static_cast<Key>(i % net_keys),
                       "q" + std::to_string(i));
  }

  NetworkedResult net_clean =
      RunNetworked(items, net_keys, -1, 0.0, Strategy::kFO);
  const double kill_after = 0.3 * net_clean.wall_seconds;
  NetworkedResult net_faulted = RunNetworked(items, net_keys, /*kill_node=*/1,
                                             kill_after, Strategy::kFO);

  // Zero lost / zero duplicated: the faulted run's output table must be
  // byte-identical to the fault-free one.
  bool outputs_identical =
      net_clean.outputs.size() == net_faulted.outputs.size();
  for (size_t i = 0; outputs_identical && i < net_clean.outputs.size(); ++i) {
    const auto& a = net_clean.outputs[i];
    const auto& b = net_faulted.outputs[i];
    outputs_identical =
        a.ok() && b.ok() ? *a == *b : a.status().code() == b.status().code();
  }

  ReportTable net_table({"run", "wall(s)", "norm", "ok", "failed",
                         "failovers", "retries", "dedup-replays"});
  net_table.AddRow(
      {"no faults", FormatDouble(net_clean.wall_seconds, 3), "1.00",
       FormatDouble(static_cast<double>(net_clean.items_ok), 0),
       FormatDouble(static_cast<double>(net_clean.items_failed), 0),
       FormatDouble(static_cast<double>(net_clean.client.node_failovers), 0),
       FormatDouble(static_cast<double>(net_clean.recovery.retries), 0),
       FormatDouble(static_cast<double>(net_clean.group.items_replayed), 0)});
  net_table.AddRow(
      {"kill data node 1",
       FormatDouble(net_faulted.wall_seconds, 3),
       FormatDouble(net_faulted.wall_seconds /
                        std::max(net_clean.wall_seconds, 1e-9),
                    2),
       FormatDouble(static_cast<double>(net_faulted.items_ok), 0),
       FormatDouble(static_cast<double>(net_faulted.items_failed), 0),
       FormatDouble(static_cast<double>(net_faulted.client.node_failovers), 0),
       FormatDouble(static_cast<double>(net_faulted.recovery.retries), 0),
       FormatDouble(static_cast<double>(net_faulted.group.items_replayed),
                    0)});
  net_table.Print("Networked recovery (a real RpcServer killed mid-join)");
  std::printf(
      "  detection latency (server dark -> declared dead): %.3fs; "
      "%" PRId64 " regions promoted; outputs vs fault-free: %s\n",
      net_faulted.detection_seconds, net_faulted.controller.regions_reassigned,
      outputs_identical ? "IDENTICAL" : "DIVERGED (bug!)");

  // ---- full Strategy sweep over real sockets (Fig 5/6/9's comparison) ---
  // Each strategy runs both modeled (simulator, fault-free) and measured
  // (the same forced routing on the live deployment). Both columns are
  // normalized to their own NO baseline — the diff column is how far the
  // model's *relative* ordering drifts from reality, which is the claim
  // the figures actually make.
  const Strategy sweep_order[] = {Strategy::kNO, Strategy::kFC, Strategy::kFD,
                                  Strategy::kFR, Strategy::kCO, Strategy::kLO,
                                  Strategy::kFO};
  std::printf("\nnetworked strategy sweep (measured vs modeled, "
              "normalized to NO)\n");
  std::vector<double> sim_secs;
  std::vector<double> net_secs;
  for (Strategy s : sweep_order) {
    JobResult sim = RunFrameworkJob(workload, s, run);
    NetworkedResult net = RunNetworked(items, net_keys, -1, 0.0, s);
    sim_secs.push_back(sim.makespan);
    net_secs.push_back(net.wall_seconds);
  }
  const double sim_no = sim_secs[0] > 0 ? sim_secs[0] : 1.0;
  const double net_no = net_secs[0] > 0 ? net_secs[0] : 1.0;
  ReportTable sweep_table(
      {"strategy", "sim(s)", "sim norm", "net(s)", "net norm", "diff"});
  for (size_t i = 0; i < sim_secs.size(); ++i) {
    double sim_norm = sim_secs[i] / sim_no;
    double net_norm = net_secs[i] / net_no;
    sweep_table.AddRow({StrategyToString(sweep_order[i]),
                        FormatDouble(sim_secs[i], 3),
                        FormatDouble(sim_norm, 3),
                        FormatDouble(net_secs[i], 3),
                        FormatDouble(net_norm, 3),
                        FormatDouble(net_norm - sim_norm, 3)});
  }
  sweep_table.Print(
      "Strategy sweep: modeled makespan vs measured wall over loopback TCP");

  FILE* json = std::fopen("BENCH_fault_recovery.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fault_recovery.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"fault_recovery\",\n");
  std::fprintf(json, "  \"scale\": %.3f,\n", scale);
  std::fprintf(json, "  \"simulated\": {\n");
  std::fprintf(json, "    \"baseline_makespan_seconds\": %.6e,\n", baseline);
  std::fprintf(json, "    \"crash_makespan_norm\": %.4f,\n",
               crashed.makespan / baseline);
  std::fprintf(json, "    \"crash_restart_makespan_norm\": %.4f,\n",
               healed.makespan / baseline);
  std::fprintf(json, "    \"straggler_makespan_norm\": %.4f,\n",
               slowed.makespan / baseline);
  std::fprintf(json, "    \"tuples_failed\": %" PRId64 ",\n",
               healed.recovery.tuples_failed);
  std::fprintf(json, "    \"deterministic\": %s\n",
               identical ? "true" : "false");
  std::fprintf(json, "  },\n");
  std::fprintf(json, "  \"networked\": {\n");
  std::fprintf(json, "    \"data_nodes\": 3,\n");
  std::fprintf(json, "    \"replication_factor\": 2,\n");
  std::fprintf(json, "    \"items\": %d,\n", net_items);
  std::fprintf(json, "    \"clean_wall_seconds\": %.6e,\n",
               net_clean.wall_seconds);
  std::fprintf(json, "    \"faulted_wall_seconds\": %.6e,\n",
               net_faulted.wall_seconds);
  std::fprintf(json, "    \"detection_latency_seconds\": %.6e,\n",
               net_faulted.detection_seconds);
  std::fprintf(json, "    \"regions_promoted\": %" PRId64 ",\n",
               net_faulted.controller.regions_reassigned);
  std::fprintf(json, "    \"node_failovers\": %" PRId64 ",\n",
               net_faulted.client.node_failovers);
  std::fprintf(json, "    \"retries\": %" PRId64 ",\n",
               net_faulted.recovery.retries);
  std::fprintf(json, "    \"items_failed\": %" PRId64 ",\n",
               net_faulted.items_failed);
  std::fprintf(json, "    \"outputs_identical_to_fault_free\": %s\n",
               outputs_identical ? "true" : "false");
  std::fprintf(json, "  },\n");
  std::fprintf(json, "  \"strategy_sweep\": [\n");
  for (size_t i = 0; i < sim_secs.size(); ++i) {
    std::fprintf(json,
                 "    {\"strategy\": \"%s\", \"sim_norm\": %.4f, "
                 "\"net_norm\": %.4f}%s\n",
                 StrategyToString(sweep_order[i]), sim_secs[i] / sim_no,
                 net_secs[i] / net_no,
                 i + 1 < sim_secs.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("wrote BENCH_fault_recovery.json\n");
  return outputs_identical && net_faulted.items_failed == 0 ? 0 : 1;
}
