// Component micro-benchmarks (google-benchmark): the per-request costs of
// every building block on the framework's hot path. These bound the runtime
// overhead the paper's techniques add per tuple (cf. the FO-vs-FD gap at
// zero skew in Fig. 8a).
#include <benchmark/benchmark.h>

#include "joinopt/cache/tiered_cache.h"
#include "joinopt/common/random.h"
#include "joinopt/engine/batcher.h"
#include "joinopt/freq/exact_counter.h"
#include "joinopt/freq/lossy_counting.h"
#include "joinopt/freq/space_saving.h"
#include "joinopt/loadbalance/balancer.h"
#include "joinopt/sim/event_queue.h"
#include "joinopt/skirental/decision_engine.h"

namespace joinopt {
namespace {

void BM_LossyCountingObserve(benchmark::State& state) {
  LossyCounting counter(1e-4);
  Rng rng(1);
  ZipfDistribution zipf(1 << 20, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.Observe(zipf.Sample(rng)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LossyCountingObserve);

void BM_SpaceSavingObserve(benchmark::State& state) {
  SpaceSaving counter(1 << 14);
  Rng rng(1);
  ZipfDistribution zipf(1 << 20, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.Observe(zipf.Sample(rng)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpaceSavingObserve);

void BM_ExactCounterObserve(benchmark::State& state) {
  ExactCounter counter;
  Rng rng(1);
  ZipfDistribution zipf(1 << 20, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.Observe(zipf.Sample(rng)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExactCounterObserve);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(7);
  ZipfDistribution zipf(static_cast<uint64_t>(state.range(0)), 1.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(1 << 10)->Arg(1 << 20)->Arg(1 << 26);

void BM_TieredCacheAdmission(benchmark::State& state) {
  LfuDaPolicy policy;
  TieredCacheConfig cfg;
  cfg.memory_capacity_bytes = 64.0 * 1024 * 1024;
  TieredCache cache(cfg, &policy);
  Rng rng(3);
  ZipfDistribution zipf(100000, 1.0);
  int64_t i = 0;
  for (auto _ : state) {
    Key k = zipf.Sample(rng);
    double benefit = static_cast<double>(++i % 1000);
    if (cache.Lookup(k) == CacheTier::kNone) {
      cache.CondCacheInMemory(k, 4096.0, benefit, /*insert=*/true);
    } else {
      cache.UpdateBenefit(k, benefit);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TieredCacheAdmission);

void BM_DecisionEngineDecide(benchmark::State& state) {
  DecisionEngineConfig cfg;
  DecisionEngine engine(cfg);
  engine.cost_model().SetBandwidth(10, 125e6);
  Rng rng(5);
  ZipfDistribution zipf(100000, static_cast<double>(state.range(0)) / 10.0);
  // Warm the engine with metadata so Decide exercises the full path.
  for (Key k = 0; k < 1000; ++k) {
    engine.OnComputeResponse(k, 10, 4096.0, 1, {1e-3, 2e-3, 5e-4, 1e-3});
  }
  for (auto _ : state) {
    Key k = zipf.Sample(rng) % 1000;
    Decision d = engine.Decide(k, 10);
    benchmark::DoNotOptimize(d);
    if (d.route == Route::kFetchCacheMemory ||
        d.route == Route::kFetchCacheDisk) {
      engine.OnValueFetched(k, d.route, 4096.0, 1);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecisionEngineDecide)->Arg(0)->Arg(10)->Arg(15);

void BM_GradientDescent(benchmark::State& state) {
  ComputeNodeStats cn;
  cn.tcc = 1e-3;
  cn.cores = 8;
  cn.lcc = 120;
  DataNodeLocalStats dn;
  dn.tcd = 1e-3;
  dn.cores = 8;
  dn.rd_all = 200;
  SizeParams sizes;
  BatchLoadModel model = BuildLoadModel(cn, dn, sizes, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GradientDescentMinimize(model));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GradientDescent);

void BM_ExactMinimize(benchmark::State& state) {
  ComputeNodeStats cn;
  cn.tcc = 1e-3;
  cn.cores = 8;
  cn.lcc = 120;
  DataNodeLocalStats dn;
  dn.tcd = 1e-3;
  dn.cores = 8;
  dn.rd_all = 200;
  SizeParams sizes;
  BatchLoadModel model = BuildLoadModel(cn, dn, sizes, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactMinimize(model));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExactMinimize);

void BM_BatcherAdd(benchmark::State& state) {
  Simulation sim;
  int64_t flushed = 0;
  Batcher batcher(&sim, 64, 5e-3, true,
                  [&flushed](std::vector<RequestItem> items) {
                    flushed += static_cast<int64_t>(items.size());
                  });
  RequestItem item;
  for (auto _ : state) {
    batcher.Add(item);
  }
  benchmark::DoNotOptimize(flushed);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BatcherAdd);

void BM_SimulationEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Simulation sim;
    int fired = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.Schedule(static_cast<double>(i) * 1e-6, [&fired] { ++fired; });
    }
    state.ResumeTiming();
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulationEventLoop);

}  // namespace
}  // namespace joinopt

BENCHMARK_MAIN();
