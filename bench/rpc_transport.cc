// Measured network costs for the RPC transport — the numbers that replace
// the ServiceLatencyModel's padding (400 us RTT, 125 MB/s, one RTT per
// delegation batch) with bytes actually on the wire:
//   * request RTT: p50/p95 of payload-free Stat round trips,
//   * fetch bandwidth: large-payload Fetch throughput,
//   * per-item delegation cost: N singleton Executes vs ExecuteBatch(N) —
//     the one-round-trip batching win, now measured instead of modeled,
//   * the PR 2 zipf workload through an unmodified ParallelInvoker over
//     localhost TCP.
// Emits BENCH_rpc_transport.json with measured-vs-modeled side by side.
//
// Modes:
//   ./rpc_transport                 in-process loopback server (default)
//   ./rpc_transport --serve [port]  run only the server, until killed
//   JOINOPT_RPC_CONNECT=host:port ./rpc_transport
//                                   measure against an external server
// The server seeds its store deterministically, so an external server and
// the client agree on contents (run --serve with the same build).
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "joinopt/common/hash.h"
#include "joinopt/common/random.h"
#include "joinopt/net/socket.h"
#include "joinopt/engine/async_api.h"
#include "joinopt/engine/latency_service.h"
#include "joinopt/engine/parallel_invoker.h"
#include "joinopt/engine/plan_exec.h"
#include "joinopt/net/rpc_client.h"
#include "joinopt/net/rpc_server.h"
#include "joinopt/store/log_store.h"

namespace joinopt {
namespace bench {
namespace {

struct Config {
  uint64_t num_keys = 2048;
  size_t payload_bytes = 4096;
  size_t big_payload_bytes = 1u << 20;  // bandwidth probes
  uint64_t num_big_keys = 16;
  int rtt_samples = 2000;
  int exec_items = 512;
  int batch_size = 64;
  double zipf_z = 0.99;
  int64_t zipf_ops = 8000;
  int window = 256;
};

/// The same cheap deterministic UDF bench/parallel_api uses; registered
/// server-side, passed client-side so local and delegated results agree.
UserFn MixUdf() {
  return [](Key key, const std::string& params, const std::string& value) {
    uint64_t acc = Mix64(key) ^ Fnv1a(params);
    size_t limit = value.size() < 256 ? value.size() : 256;
    for (size_t i = 0; i < limit; i += 8) {
      acc = Mix64(acc + static_cast<unsigned char>(value[i]));
    }
    return std::to_string(acc & 0xffff);
  };
}

/// Big keys live above the regular key space.
Key BigKey(const Config& cfg, uint64_t i) { return cfg.num_keys + i; }

/// Deterministic store contents shared by --serve and the loopback mode.
void SeedStore(LogStructuredStore* store, const Config& cfg) {
  for (Key k = 0; k < cfg.num_keys; ++k) {
    std::string payload(cfg.payload_bytes,
                        static_cast<char>('a' + (k % 26)));
    store->Put(k, std::move(payload));
  }
  for (uint64_t i = 0; i < cfg.num_big_keys; ++i) {
    std::string payload(cfg.big_payload_bytes,
                        static_cast<char>('A' + (i % 26)));
    store->Put(BigKey(cfg, i), std::move(payload));
  }
}

double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

struct Measured {
  double rtt_p50 = 0, rtt_p95 = 0;
  LatencyRecorder rtt;  ///< p50/p99/p999 over the same samples
  double fetch_bandwidth = 0;  // bytes/sec, 1 MiB payloads
  double exec_singleton_per_item = 0;
  double exec_batch_per_item = 0;
  int64_t bytes_out = 0, bytes_in = 0;
};

Measured MeasureTransport(RpcClientService& remote, const Config& cfg) {
  Measured m;

  // Warm the connection + caches.
  for (int i = 0; i < 32; ++i) (void)remote.Stat(static_cast<Key>(i));

  std::vector<double> rtts;
  rtts.reserve(static_cast<size_t>(cfg.rtt_samples));
  for (int i = 0; i < cfg.rtt_samples; ++i) {
    Key k = static_cast<Key>(i) % cfg.num_keys;
    double t0 = PlanNowSeconds();
    auto stat = remote.Stat(k);
    double dt = PlanNowSeconds() - t0;
    if (stat.ok()) {
      rtts.push_back(dt);
      m.rtt.Observe(dt);
    }
  }
  m.rtt_p50 = Percentile(rtts, 0.50);
  m.rtt_p95 = Percentile(rtts, 0.95);

  double bytes = 0;
  double t0 = PlanNowSeconds();
  for (uint64_t i = 0; i < cfg.num_big_keys; ++i) {
    auto fetched = remote.Fetch(BigKey(cfg, i));
    if (fetched.ok()) bytes += static_cast<double>(fetched->value.size());
  }
  double fetch_seconds = PlanNowSeconds() - t0;
  m.fetch_bandwidth = fetch_seconds > 0 ? bytes / fetch_seconds : 0;

  // N singleton Executes vs the same N through ExecuteBatch.
  UserFn fn = MixUdf();
  std::vector<std::pair<Key, std::string>> items;
  for (int i = 0; i < cfg.exec_items; ++i) {
    items.emplace_back(static_cast<Key>(i) % cfg.num_keys, "p");
  }
  double singleton_best = 1e30, batch_best = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    t0 = PlanNowSeconds();
    for (const auto& [key, params] : items) {
      auto r = remote.Execute(key, params, fn);
      if (!r.ok()) std::exit(1);
    }
    singleton_best = std::min(singleton_best, PlanNowSeconds() - t0);

    t0 = PlanNowSeconds();
    for (size_t off = 0; off < items.size();
         off += static_cast<size_t>(cfg.batch_size)) {
      size_t end = std::min(items.size(),
                            off + static_cast<size_t>(cfg.batch_size));
      std::vector<std::pair<Key, std::string>> chunk(
          items.begin() + static_cast<long>(off),
          items.begin() + static_cast<long>(end));
      for (const auto& r : remote.ExecuteBatch(chunk, fn)) {
        if (!r.ok()) std::exit(1);
      }
    }
    batch_best = std::min(batch_best, PlanNowSeconds() - t0);
  }
  m.exec_singleton_per_item =
      singleton_best / static_cast<double>(cfg.exec_items);
  m.exec_batch_per_item = batch_best / static_cast<double>(cfg.exec_items);

  RpcClientStats cs = remote.stats();
  m.bytes_out = cs.bytes_out;
  m.bytes_in = cs.bytes_in;
  return m;
}

struct ZipfResult {
  int threads = 0;
  double seconds = 0;
  double ops_per_sec = 0;
  double hit_rate = 0;
  int64_t delegated = 0;
  int64_t delegation_batches = 0;
  int64_t transport_errors = 0;
};

/// The PR 2 zipf workload, verbatim, with the RPC client as the service.
ZipfResult RunZipf(RpcClientService& remote, const Config& cfg,
                   int threads) {
  Rng rng(42);
  ZipfDistribution zipf(cfg.num_keys, cfg.zipf_z);
  std::vector<Key> trace;
  trace.reserve(static_cast<size_t>(cfg.zipf_ops));
  for (int64_t i = 0; i < cfg.zipf_ops; ++i) {
    trace.push_back(static_cast<Key>(zipf.Sample(rng)));
  }

  ParallelInvokerOptions opt;
  opt.num_threads = threads;
  ParallelInvoker invoker(&remote, MixUdf(), opt);

  double t0 = PlanNowSeconds();
  size_t i = 0;
  while (i < trace.size()) {
    size_t end = std::min(i + static_cast<size_t>(cfg.window), trace.size());
    for (size_t j = i; j < end; ++j) invoker.SubmitComp(trace[j], "p");
    for (size_t j = i; j < end; ++j) {
      auto r = invoker.FetchComp(trace[j], "p");
      if (!r.ok()) {
        std::fprintf(stderr, "fetch failed: %s\n",
                     r.status().ToString().c_str());
        std::exit(1);
      }
    }
    i = end;
  }
  invoker.Barrier();
  double elapsed = PlanNowSeconds() - t0;

  ParallelInvokerStats s = invoker.stats();
  ZipfResult out;
  out.threads = threads;
  out.seconds = elapsed;
  out.ops_per_sec = static_cast<double>(trace.size()) / elapsed;
  out.hit_rate = static_cast<double>(s.served_from_cache) /
                 static_cast<double>(trace.size());
  out.delegated = s.delegated;
  out.delegation_batches = s.delegation_batches;
  out.transport_errors = s.transport_errors;
  return out;
}

// ---- connection-count scaling: threaded vs reactor backend -------------

struct ConnScaleResult {
  const char* backend = "";
  int connections = 0;
  double ops_per_sec = 0;
  LatencyRecorder latency;
  int64_t server_threads = 0;
  int64_t rss_bytes = 0;
};

/// VmRSS of this process (server + clients share it in loopback mode — the
/// delta across rows is what matters, dominated by per-connection state).
int64_t CurrentRssBytes() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  int64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %" PRId64 " kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb * 1024;
}

/// One row: `num_conns` idle connections held open against a fresh server
/// on `backend`, RTT probes measured through the idle swarm. The axis the
/// two backends diverge on: threads and memory per idle connection.
ConnScaleResult RunConnScale(const Config& cfg, RpcBackend backend,
                             const char* backend_name, int num_conns) {
  LogStructuredStore store;
  SeedStore(&store, cfg);
  LogStoreDataService service(&store);
  RpcServerOptions sopts;
  sopts.backend = backend;
  sopts.accept_backlog = 512;
  RpcServer server(&service, MixUdf(), sopts);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "conn-scale server failed: %s\n",
                 started.ToString().c_str());
    std::exit(1);
  }

  std::vector<UniqueFd> idle;
  idle.reserve(static_cast<size_t>(num_conns));
  for (int i = 0; i < num_conns; ++i) {
    auto conn = TcpConnect(server.host(), server.port(), 10.0);
    if (!conn.ok()) {
      std::fprintf(stderr, "idle connect %d failed: %s\n", i,
                   conn.status().ToString().c_str());
      std::exit(1);
    }
    idle.push_back(std::move(conn).value());
  }
  // Let the acceptor catch up before sampling gauges.
  while (server.stats().live_connections < num_conns) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  RpcClientOptions copts;
  copts.endpoints.push_back(RpcEndpoint{server.host(), server.port()});
  RpcClientService remote(copts);
  for (int i = 0; i < 32; ++i) (void)remote.Stat(static_cast<Key>(i));

  ConnScaleResult r;
  int probes = std::max(200, cfg.rtt_samples / 4);
  double t0 = PlanNowSeconds();
  for (int i = 0; i < probes; ++i) {
    Key k = static_cast<Key>(i) % cfg.num_keys;
    double s0 = PlanNowSeconds();
    auto stat = remote.Stat(k);
    if (stat.ok()) r.latency.Observe(PlanNowSeconds() - s0);
  }
  double elapsed = PlanNowSeconds() - t0;
  r.backend = backend_name;
  r.connections = num_conns;
  r.ops_per_sec = elapsed > 0 ? probes / elapsed : 0;
  r.server_threads = server.stats().server_threads;
  r.rss_bytes = CurrentRssBytes();
  return r;
}

std::vector<ConnScaleResult> RunConnScaling(const Config& cfg,
                                            double scale) {
  // 10k connections (and threaded-backend thread counts to match) only at
  // scale >= 4: this axis is expensive on small CI boxes.
  std::vector<int> counts = {100, 1000};
  if (scale >= 4.0) counts.push_back(10000);

  std::printf("\nconnection scaling (idle connections held open):\n");
  std::printf("%10s %12s %12s %12s %12s %10s %10s\n", "backend", "conns",
              "ops/sec", "p50 us", "p999 us", "threads", "rss MB");
  std::vector<ConnScaleResult> rows;
  for (RpcBackend backend :
       {RpcBackend::kThreadPerConnection, RpcBackend::kReactor}) {
    const char* name =
        backend == RpcBackend::kReactor ? "reactor" : "threaded";
    for (int n : counts) {
      // A thread per connection at 10k threads is exactly the failure
      // mode the reactor exists to avoid; don't make CI live it.
      if (backend == RpcBackend::kThreadPerConnection && n > 1000) continue;
      ConnScaleResult r = RunConnScale(cfg, backend, name, n);
      std::printf("%10s %12d %12.0f %12.1f %12.1f %10" PRId64 " %9.1f\n",
                  r.backend, r.connections, r.ops_per_sec,
                  r.latency.p50() * 1e6, r.latency.p999() * 1e6,
                  r.server_threads,
                  static_cast<double>(r.rss_bytes) / 1e6);
      std::fflush(stdout);
      rows.push_back(std::move(r));
    }
  }
  return rows;
}

int Serve(const Config& cfg, uint16_t port) {
  LogStructuredStore store;
  SeedStore(&store, cfg);
  LogStoreDataService service(&store);
  RpcServerOptions sopts;
  sopts.port = port;
  RpcServer server(&service, MixUdf(), sopts);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server failed to start: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("rpc_transport server on %s:%u (%" PRIu64
              " keys, %zu B payloads; Ctrl-C to stop)\n",
              server.host().c_str(), server.port(), cfg.num_keys,
              cfg.payload_bytes);
  std::fflush(stdout);
  for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
}

}  // namespace

int Main(int argc, char** argv) {
  double scale = BenchScale();
  Config cfg;
  cfg.rtt_samples = std::max(200, static_cast<int>(cfg.rtt_samples * scale));
  cfg.exec_items = std::max(64, static_cast<int>(cfg.exec_items * scale));
  cfg.zipf_ops = std::max<int64_t>(
      512, static_cast<int64_t>(static_cast<double>(cfg.zipf_ops) * scale));

  if (argc > 1 && std::strcmp(argv[1], "--serve") == 0) {
    uint16_t port = argc > 2
                        ? static_cast<uint16_t>(std::atoi(argv[2]))
                        : 7070;
    return Serve(cfg, port);
  }

  PrintHeader("rpc_transport: measured network vs ServiceLatencyModel",
              "batch ExecuteBatch per-item cost << singleton Execute cost; "
              "loopback RTT well under the modeled 400 us WAN-ish default");

  // Local server unless JOINOPT_RPC_CONNECT points elsewhere.
  std::unique_ptr<LogStructuredStore> store;
  std::unique_ptr<LogStoreDataService> inner;
  std::unique_ptr<RpcServer> server;
  RpcClientOptions copts;
  const char* connect = std::getenv("JOINOPT_RPC_CONNECT");
  if (connect != nullptr) {
    std::string spec(connect);
    size_t colon = spec.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "JOINOPT_RPC_CONNECT must be host:port\n");
      return 1;
    }
    copts.endpoints.push_back(
        RpcEndpoint{spec.substr(0, colon),
                    static_cast<uint16_t>(std::atoi(spec.c_str() + colon + 1))});
    std::printf("connecting to external server %s\n", connect);
  } else {
    store = std::make_unique<LogStructuredStore>();
    SeedStore(store.get(), cfg);
    inner = std::make_unique<LogStoreDataService>(store.get());
    server = std::make_unique<RpcServer>(inner.get(), MixUdf());
    Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "server failed to start: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    copts.endpoints.push_back(RpcEndpoint{server->host(), server->port()});
  }
  RpcClientService remote(copts);

  ServiceLatencyModel model;  // the padding these measurements replace
  Measured m = MeasureTransport(remote, cfg);

  std::printf("\n%-34s %14s %14s\n", "metric", "measured", "modeled");
  std::printf("%-34s %11.1f us %11.1f us\n", "request RTT p50",
              m.rtt_p50 * 1e6, model.execute_rtt * 1e6);
  std::printf("%-34s %11.1f us %14s\n", "request RTT p95", m.rtt_p95 * 1e6,
              "-");
  m.rtt.PrintLine("request RTT tail");
  std::printf("%-34s %11.1f MB/s %9.1f MB/s\n", "fetch bandwidth (1 MiB)",
              m.fetch_bandwidth / 1e6, model.bandwidth_bytes_per_sec / 1e6);
  std::printf("%-34s %11.2f us %11.1f us\n", "Execute per item (singleton)",
              m.exec_singleton_per_item * 1e6,
              (model.execute_rtt + model.execute_per_item) * 1e6);
  std::printf("%-34s %11.2f us %11.1f us\n",
              "Execute per item (batch of 64)",
              m.exec_batch_per_item * 1e6,
              (model.execute_rtt / cfg.batch_size + model.execute_per_item) *
                  1e6);
  double batch_win = m.exec_batch_per_item > 0
                         ? m.exec_singleton_per_item / m.exec_batch_per_item
                         : 0;
  std::printf("%-34s %13.2fx\n", "batching win (per item)", batch_win);

  std::printf("\nzipf workload over TCP (z=%.2f, %" PRId64 " ops):\n",
              cfg.zipf_z, cfg.zipf_ops);
  std::printf("%8s %12s %14s %10s %10s %8s\n", "threads", "seconds",
              "ops/sec", "hit_rate", "delegated", "batches");
  std::vector<ZipfResult> zipf_results;
  for (int threads : {1, 4, 8}) {
    ZipfResult r = RunZipf(remote, cfg, threads);
    std::printf("%8d %12.3f %14.0f %9.1f%% %10" PRId64 " %8" PRId64 "\n",
                r.threads, r.seconds, r.ops_per_sec, 100.0 * r.hit_rate,
                r.delegated, r.delegation_batches);
    std::fflush(stdout);
    if (r.transport_errors > 0) {
      std::fprintf(stderr, "unexpected transport errors: %" PRId64 "\n",
                   r.transport_errors);
      return 1;
    }
    zipf_results.push_back(r);
  }

  // Connection scaling needs its own servers, so it only runs in loopback
  // mode (an external server's thread/RSS gauges aren't visible anyway).
  std::vector<ConnScaleResult> conn_rows;
  if (connect == nullptr) conn_rows = RunConnScaling(cfg, scale);

  RecoveryCounters rec = remote.recovery_counters();
  RpcClientStats cs = remote.stats();
  std::printf("\nwire traffic: %.1f MB out, %.1f MB in, %" PRId64
              " connections; recovery: %" PRId64 " timeouts, %" PRId64
              " retries, %" PRId64 " failovers\n",
              static_cast<double>(cs.bytes_out) / 1e6,
              static_cast<double>(cs.bytes_in) / 1e6,
              cs.connections_opened, rec.timeouts, rec.retries,
              rec.failovers);

  FILE* json = std::fopen("BENCH_rpc_transport.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_rpc_transport.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"rpc_transport\",\n");
  std::fprintf(json, "  \"scale\": %.3f,\n", scale);
  std::fprintf(json, "  \"external_server\": %s,\n",
               connect != nullptr ? "true" : "false");
  std::fprintf(json, "  \"measured\": {\n");
  std::fprintf(json, "    \"rtt_seconds_p50\": %.6e,\n", m.rtt_p50);
  std::fprintf(json, "    \"rtt_seconds_p95\": %.6e,\n", m.rtt_p95);
  std::fprintf(json, "    ");
  m.rtt.JsonFields(json, "rtt");
  std::fprintf(json, ",\n");
  std::fprintf(json, "    \"fetch_bandwidth_bytes_per_sec\": %.6e,\n",
               m.fetch_bandwidth);
  std::fprintf(json, "    \"execute_per_item_singleton_seconds\": %.6e,\n",
               m.exec_singleton_per_item);
  std::fprintf(json, "    \"execute_per_item_batch_seconds\": %.6e,\n",
               m.exec_batch_per_item);
  std::fprintf(json, "    \"batching_win\": %.3f,\n", batch_win);
  std::fprintf(json, "    \"bytes_out\": %" PRId64 ",\n", cs.bytes_out);
  std::fprintf(json, "    \"bytes_in\": %" PRId64 "\n", cs.bytes_in);
  std::fprintf(json, "  },\n");
  std::fprintf(json, "  \"modeled\": {\n");
  std::fprintf(json, "    \"rtt_seconds\": %.6e,\n", model.execute_rtt);
  std::fprintf(json, "    \"bandwidth_bytes_per_sec\": %.6e,\n",
               model.bandwidth_bytes_per_sec);
  std::fprintf(json, "    \"execute_per_item_seconds\": %.6e\n",
               model.execute_per_item);
  std::fprintf(json, "  },\n");
  std::fprintf(json, "  \"zipf_over_tcp\": [\n");
  for (size_t i = 0; i < zipf_results.size(); ++i) {
    const ZipfResult& r = zipf_results[i];
    std::fprintf(json,
                 "    {\"threads\": %d, \"seconds\": %.4f, \"ops_per_sec\": "
                 "%.1f, \"hit_rate\": %.4f, \"delegated\": %" PRId64
                 ", \"delegation_batches\": %" PRId64 "}%s\n",
                 r.threads, r.seconds, r.ops_per_sec, r.hit_rate,
                 r.delegated, r.delegation_batches,
                 i + 1 < zipf_results.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"connection_scaling\": [\n");
  for (size_t i = 0; i < conn_rows.size(); ++i) {
    const ConnScaleResult& r = conn_rows[i];
    std::fprintf(json,
                 "    {\"backend\": \"%s\", \"connections\": %d, "
                 "\"ops_per_sec\": %.1f, \"server_threads\": %" PRId64
                 ", \"rss_bytes\": %" PRId64 ", ",
                 r.backend, r.connections, r.ops_per_sec, r.server_threads,
                 r.rss_bytes);
    r.latency.JsonFields(json, "rtt");
    std::fprintf(json, "}%s\n", i + 1 < conn_rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_rpc_transport.json\n");

  // The acceptance bar: batching over real sockets must beat singletons.
  if (m.exec_batch_per_item >= m.exec_singleton_per_item) {
    std::fprintf(stderr,
                 "FAIL: batched Execute not cheaper than singletons\n");
    return 1;
  }
  return 0;
}

}  // namespace bench
}  // namespace joinopt

int main(int argc, char** argv) { return joinopt::bench::Main(argc, argv); }
