// Figure 9: adaptive vs non-adaptive optimization under a *changing* key
// distribution (the frequent keys are re-drawn 10 times during the run).
// Non-adaptive = ski-rental caching decisions frozen after the first 10% of
// tuples (cache contents never change afterwards); load balancing stays on.
// Reported: time(non-adaptive) / time(adaptive) — > 1 means adaptivity won.
//
// Paper shape: ratio ~1 at z=0 for all workloads; grows with skew for DH and
// DCH (caching-dependent); stays near 1 for CH (load balancing carries it).
#include <vector>

#include "bench_common.h"
#include "joinopt/workload/synthetic.h"

int main() {
  using namespace joinopt;
  using namespace joinopt::bench;
  const double scale = BenchScale();
  const std::vector<double> skews = {0.0, 0.5, 1.0, 1.5};

  PrintHeader("Figure 9: adaptive vs non-adaptive (dynamic distribution)",
              "ratio ~1 at z=0; rises with skew for DH/DCH; ~1 for CH");

  FrameworkRunConfig adaptive_run;
  adaptive_run.cluster = PaperCluster();
  adaptive_run.engine = PaperEngine();
  // Cold-read regime: the stored data exceeds cluster memory (see fig8).
  adaptive_run.engine.data_node_block_cache_bytes = 0;
  NodeLayout layout = NodeLayout::Of(adaptive_run.cluster.num_compute_nodes,
                                     adaptive_run.cluster.num_data_nodes);

  int tuples_per_node = static_cast<int>(3000 * scale);
  FrameworkRunConfig frozen_run = adaptive_run;
  frozen_run.engine.decision.freeze_after_decisions = tuples_per_node / 10;

  std::vector<std::string> header = {"workload"};
  for (double z : skews) header.push_back("z=" + FormatDouble(z, 1));
  ReportTable table(header);

  for (SyntheticKind kind :
       {SyntheticKind::kDataHeavy, SyntheticKind::kDataComputeHeavy,
        SyntheticKind::kComputeHeavy}) {
    std::vector<double> ratios;
    for (double z : skews) {
      SyntheticConfig cfg;
      cfg.kind = kind;
      cfg.zipf_z = z;
      cfg.tuples_per_node = tuples_per_node;
      cfg.num_keys = static_cast<int>(50000 * scale);
      cfg.popularity_shifts = 10;  // the paper changes the hot keys 10x
      GeneratedWorkload w = MakeSyntheticWorkload(cfg, layout);
      JobResult adaptive = RunFrameworkJob(w, Strategy::kFO, adaptive_run);
      JobResult frozen = RunFrameworkJob(w, Strategy::kFO, frozen_run);
      ratios.push_back(adaptive.makespan > 0
                           ? frozen.makespan / adaptive.makespan
                           : 0.0);
    }
    table.AddNumericRow(SyntheticKindToString(kind), ratios, 3);
  }
  table.Print("time(non-adaptive) / time(adaptive), FO with shifts=10");
  return 0;
}
