// Appendix A: CloudBurst-style genome read alignment. The reference's
// n-gram index lives in the parallel store; reads probe it and an
// approximate-matching UDO runs per candidate location. Repetitive regions
// make a few n-grams (and their UDO loads) enormous — the skew the paper's
// framework (and SkewTune, for MapReduce) targets.
//
// Paper expectation (qualitative — Appendix A gives no numbers): the
// reduce-side formulation (FD: all matching at the n-gram owners) straggles
// on the repeat n-grams; FO spreads exactly those across the compute nodes.
#include "bench_common.h"
#include "joinopt/workload/cloudburst.h"

int main() {
  using namespace joinopt;
  using namespace joinopt::bench;
  const double scale = BenchScale();

  PrintHeader("Appendix A: CloudBurst genome read alignment",
              "FD straggles on repeat n-grams; FO spreads the matching load");

  CloudBurstConfig cfg;
  cfg.reference_bases = static_cast<int64_t>(400000 * scale);
  cfg.reads = static_cast<int64_t>(60000 * scale);
  NgramIndex index = GenerateCloudBurst(cfg);
  std::printf("reference: %lld bases, %zu distinct %d-grams; %lld reads, "
              "%lld candidate alignments\n",
              static_cast<long long>(cfg.reference_bases), index.keys.size(),
              cfg.ngram, static_cast<long long>(cfg.reads),
              static_cast<long long>(index.total_candidate_alignments));

  FrameworkRunConfig run;
  run.cluster = PaperCluster();
  run.engine = PaperEngine();
  NodeLayout layout = NodeLayout::Of(run.cluster.num_compute_nodes,
                                     run.cluster.num_data_nodes);
  GeneratedWorkload w = ToCloudBurstWorkload(index, layout);

  ReportTable table({"strategy", "time", "data-node CPU skew", "cache hits"});
  for (Strategy s : {Strategy::kFC, Strategy::kFD, Strategy::kLO,
                     Strategy::kFO}) {
    JobResult r = RunFrameworkJob(w, s, run);
    table.AddRow({StrategyToString(s), FormatDuration(r.makespan),
                  FormatDouble(r.data_cpu_skew, 2),
                  std::to_string(r.cache_memory_hits + r.cache_disk_hits)});
  }
  table.Print("Read alignment (lower time / skew = better)");
  return 0;
}
