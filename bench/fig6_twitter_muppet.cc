// Figure 6: entity annotation of a tweet stream on the Muppet-style engine —
// tweets annotated per second for NO, FC, FD, FR, FO. Higher is better.
//
// Paper shape: FD worst (data-node skew); NO low (blocking fetches);
// FC > NO (batching/prefetch); FO ~2x NO and ~1.2x FR.
#include "bench_common.h"
#include "joinopt/stream/muppet.h"
#include "joinopt/workload/entity_annotation.h"

int main() {
  using namespace joinopt;
  using namespace joinopt::bench;
  const double scale = BenchScale();

  PrintHeader("Figure 6: Twitter entity annotation on Muppet (stream)",
              "FD lowest; NO low; FC > NO; FO ~2x NO, ~1.2x FR");

  TweetStreamConfig cfg;
  cfg.tweets = static_cast<int>(60000 * scale);
  cfg.num_tokens = static_cast<int>(20000 * scale);
  cfg.popularity_shifts = 8;  // trending topics
  AnnotationSpots spots = GenerateTweetStream(cfg);
  std::printf("stream: %lld tweets, %lld spots (%.0f%% annotatable target)\n",
              static_cast<long long>(spots.documents),
              static_cast<long long>(spots.num_spots()),
              cfg.annotatable_fraction * 100);

  FrameworkRunConfig run;
  run.cluster = PaperCluster();
  run.engine = PaperEngine();
  NodeLayout layout = NodeLayout::Of(run.cluster.num_compute_nodes,
                                     run.cluster.num_data_nodes);
  GeneratedWorkload workload = ToFrameworkWorkload(spots, layout);

  ReportTable table({"strategy", "tweets/s", "spots/s", "rel. to NO"});
  double no_rate = 0;
  for (Strategy s : {Strategy::kNO, Strategy::kFC, Strategy::kFD,
                     Strategy::kFR, Strategy::kFO}) {
    MuppetRunResult r = RunMuppetStream(workload, s, run, spots.documents);
    if (s == Strategy::kNO) no_rate = r.documents_per_second;
    table.AddRow({StrategyToString(s),
                  FormatDouble(r.documents_per_second, 0),
                  FormatDouble(r.items_per_second, 0),
                  FormatDouble(no_rate > 0 ? r.documents_per_second / no_rate
                                           : 0,
                               2)});
  }
  table.Print("Tweets annotated per second (higher is better)");
  return 0;
}
