// Figure 5: entity annotation of a web corpus (ClueWeb09 stand-in) as a
// batch job — total time for the MapReduce baselines (Hadoop, CSAW,
// FlowJoinLB, all 20 nodes) and the framework strategies (NO, FC, FD, FR,
// FO, on 10 compute + 10 data nodes). Lower is better.
//
// Paper shape: Hadoop far worst (straggler reducers); FD poor (data-node
// skew); CSAW and FlowJoinLB mitigate skew but stay ~2x slower than FO
// (shuffle + duplicated model reads + phase barrier); FC ~1.25x FO; FO best.
#include <vector>

#include "bench_common.h"
#include "joinopt/workload/entity_annotation.h"

int main() {
  using namespace joinopt;
  using namespace joinopt::bench;
  const double scale = BenchScale();

  PrintHeader("Figure 5: ClueWeb entity annotation (batch)",
              "Hadoop >> FD > CSAW ~ FlowJoinLB > NO > FC (~1.25x FO) > FO");

  AnnotationConfig cfg;
  cfg.num_tokens = static_cast<int>(20000 * scale);
  cfg.documents = static_cast<int>(8000 * scale);
  cfg.spots_per_doc_mean = 12.0;
  AnnotationSpots spots = GenerateAnnotationSpots(cfg);
  std::printf("corpus: %lld documents, %lld spots, %s of models, "
              "%.0f CPU-seconds of classification\n",
              static_cast<long long>(spots.documents),
              static_cast<long long>(spots.num_spots()),
              FormatBytes(spots.total_model_bytes()).c_str(),
              spots.total_classify_cost());

  FrameworkRunConfig run;
  run.cluster = PaperCluster();
  run.engine = PaperEngine();
  NodeLayout layout = NodeLayout::Of(run.cluster.num_compute_nodes,
                                     run.cluster.num_data_nodes);
  GeneratedWorkload workload = ToFrameworkWorkload(spots, layout);

  ReportTable table({"technique", "time", "rel. to FO", "cpu-skew"});
  std::vector<std::pair<std::string, JobResult>> results;

  for (MrBaselineKind kind :
       {MrBaselineKind::kHadoop, MrBaselineKind::kCsaw,
        MrBaselineKind::kFlowJoinLb}) {
    auto r = RunAnnotationBaselineJob(spots, kind, run.cluster);
    results.emplace_back(MrBaselineKindToString(kind), r.job);
  }
  for (Strategy s : {Strategy::kNO, Strategy::kFC, Strategy::kFD,
                     Strategy::kFR, Strategy::kFO}) {
    results.emplace_back(StrategyToString(s),
                         RunFrameworkJob(workload, s, run));
  }

  double fo_time = results.back().second.makespan;
  for (const auto& [name, r] : results) {
    table.AddRow({name, FormatDuration(r.makespan),
                  FormatDouble(fo_time > 0 ? r.makespan / fo_time : 0, 2),
                  FormatDouble(std::max(r.compute_cpu_skew, r.data_cpu_skew),
                               2)});
  }
  table.Print("Entity annotation, total time (lower is better)");
  return 0;
}
