// Tail-latency engineering bench (DESIGN.md §15): percentile-driven hedged
// reads + load-aware replica selection under an injected straggler.
//
// Section 1 — hedging. A zipf Fetch workload runs over loopback TCP against
// two replicas of one store. The primary replica stalls a small fraction of
// requests (tail spikes: every Nth fetch sleeps `spike_seconds`), the shape
// per-endpoint percentile hedging is built for: the endpoint's p95 stays in
// the fast mode, so a spiked request outlives it almost immediately and the
// duplicate to the healthy sibling wins. The bench sweeps hedge percentile
// x hedge budget and reports p50/p99/p999 plus the realized hedge rate per
// cell, against an unhedged baseline.
//
// Section 2 — replica selection. A synthetic (clock-free, deterministic)
// loop draws per-request latencies for three replicas, one degraded 20x,
// and compares uniform-random selection against power-of-two-choices over
// a NodeLoadView. The p2c policy should route almost nothing at the
// degraded node once its EWMA reflects reality.
//
// Emits BENCH_tail_latency.json. Exit status enforces the CI gate:
//   * hedged p99 (default p95/5% cell) <= unhedged p99 under the straggler,
//   * realized hedge rate <= configured budget in every swept cell,
//   * p2c mean latency < random-selection mean latency.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "joinopt/common/random.h"
#include "joinopt/engine/hedging_manager.h"
#include "joinopt/loadbalance/node_load_view.h"
#include "joinopt/net/rpc_client.h"
#include "joinopt/net/rpc_server.h"
#include "joinopt/store/log_store.h"

namespace joinopt {
namespace bench {
namespace {

struct Config {
  uint64_t num_keys = 512;
  size_t payload_bytes = 512;
  int64_t ops_per_cell = 2500;
  double zipf_z = 0.99;
  /// Straggler injection at the primary: every `spike_every`-th fetch
  /// stalls `spike_seconds` (2% tail mass, well above p95's watermark).
  int spike_every = 50;
  double spike_seconds = 40e-3;
  /// Synthetic replica-selection loop length.
  int64_t selection_picks = 20000;
};

UserFn EchoFn() {
  return [](Key key, const std::string& params, const std::string& value) {
    return std::to_string(key) + params + std::to_string(value.size());
  };
}

/// Pads every `every`-th Fetch by `spike_seconds` — the injected straggler.
class SpikyService : public DataService {
 public:
  SpikyService(DataService* inner, int every, double spike_seconds)
      : inner_(inner), every_(every), spike_seconds_(spike_seconds) {}

  StatusOr<Fetched> Fetch(Key key) override {
    if (calls_.fetch_add(1, std::memory_order_relaxed) % every_ ==
        every_ - 1) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(spike_seconds_));
    }
    return inner_->Fetch(key);
  }
  StatusOr<std::string> Execute(Key key, const std::string& params,
                                const UserFn& fn) override {
    return inner_->Execute(key, params, fn);
  }
  std::vector<StatusOr<std::string>> ExecuteBatch(
      const std::vector<std::pair<Key, std::string>>& items,
      const UserFn& fn) override {
    return inner_->ExecuteBatch(items, fn);
  }
  StatusOr<ItemStat> Stat(Key key) const override { return inner_->Stat(key); }
  NodeId OwnerOf(Key key) const override { return inner_->OwnerOf(key); }

 private:
  DataService* inner_;
  const int every_;
  const double spike_seconds_;
  std::atomic<int64_t> calls_{0};
};

struct CellResult {
  double percentile = 0;    ///< 0 = unhedged baseline
  double budget = 0;
  LatencyRecorder latency;
  int64_t hedges_sent = 0;
  int64_t hedges_won = 0;
  double realized_rate = 0;  ///< hedges_granted / primaries (manager view)
};

/// One sweep cell: a fresh client (fresh pools, counters, hedging manager)
/// over the shared replica pair; `percentile` <= 0 disables hedging.
CellResult RunCell(const Config& cfg, const std::vector<RpcEndpoint>& eps,
                   double percentile, double budget) {
  CellResult out;
  out.percentile = percentile;
  out.budget = budget;

  RpcClientOptions copts;
  copts.endpoints = eps;
  copts.balance_reads = false;  // pin the primary onto the straggler
  std::shared_ptr<HedgingManager> manager;
  if (percentile > 0) {
    HedgingConfig hc;
    hc.percentile = percentile;
    hc.budget = budget;
    hc.fallback_delay = cfg.spike_seconds;  // pre-warmup: no early hedges
    hc.warmup = 64;
    hc.window = 2048;
    manager = std::make_shared<HedgingManager>(hc);
    copts.hedging = manager;
  }
  RpcClientService client(std::move(copts));

  Rng rng(0x7a11 ^ static_cast<uint64_t>(percentile * 1e4) ^
          static_cast<uint64_t>(budget * 1e4));
  ZipfDistribution zipf(cfg.num_keys, cfg.zipf_z);
  for (int64_t i = 0; i < cfg.ops_per_cell; ++i) {
    Key k = static_cast<Key>(zipf.Sample(rng));
    auto t0 = std::chrono::steady_clock::now();
    auto fetched = client.Fetch(k);
    double dt = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    if (!fetched.ok()) {
      std::fprintf(stderr, "fetch failed: %s\n",
                   fetched.status().ToString().c_str());
      std::exit(1);
    }
    out.latency.Observe(dt);
  }

  RecoveryCounters rec = client.recovery_counters();
  out.hedges_sent = rec.hedges_sent;
  out.hedges_won = rec.hedges_won;
  if (manager) out.realized_rate = manager->stats().realized_rate();
  return out;
}

struct SelectionResult {
  double random_mean = 0, random_p99 = 0;
  double p2c_mean = 0, p2c_p99 = 0;
  int64_t p2c_degraded_picks = 0;
  int64_t random_degraded_picks = 0;
};

/// Clock-free replica-selection comparison: three replicas at 1 ms / 1 ms /
/// 20 ms service time (one degraded node), latency per request drawn as
/// base * (0.5 + U[0,1)). Uniform-random vs p2c over a NodeLoadView fed
/// the observed latencies.
SelectionResult RunSelection(const Config& cfg) {
  const std::vector<double> base{1e-3, 1e-3, 20e-3};
  const std::vector<NodeId> candidates{0, 1, 2};
  SelectionResult out;

  for (int policy = 0; policy < 2; ++policy) {
    NodeLoadView view(3, /*seed=*/0xbeef);
    Rng rng(0x5e1ec7 + static_cast<uint64_t>(policy));
    LatencyRecorder rec;
    int64_t degraded = 0;
    for (int64_t i = 0; i < cfg.selection_picks; ++i) {
      NodeId n;
      if (policy == 0) {
        n = candidates[static_cast<size_t>(rng.NextDouble() * 3.0) % 3];
      } else {
        n = view.PickTwoChoices(candidates);
      }
      if (n == 2) ++degraded;
      double latency =
          base[static_cast<size_t>(n)] * (0.5 + rng.NextDouble());
      view.StartRequest(n);
      view.FinishRequest(n, latency);
      rec.Observe(latency);
    }
    if (policy == 0) {
      out.random_mean = rec.mean();
      out.random_p99 = rec.p99();
      out.random_degraded_picks = degraded;
    } else {
      out.p2c_mean = rec.mean();
      out.p2c_p99 = rec.p99();
      out.p2c_degraded_picks = degraded;
    }
  }
  return out;
}

int Main() {
  double scale = BenchScale();
  Config cfg;
  cfg.ops_per_cell = std::max<int64_t>(
      500, static_cast<int64_t>(static_cast<double>(cfg.ops_per_cell) * scale));
  cfg.selection_picks = std::max<int64_t>(
      2000,
      static_cast<int64_t>(static_cast<double>(cfg.selection_picks) * scale));

  PrintHeader("tail_latency: hedged reads + load-aware replica selection",
              "hedged p99 well under the injected 40 ms straggler spikes; "
              "realized hedge rate <= budget; p2c avoids the degraded node");

  LogStructuredStore store{LogStoreConfig{}};
  for (Key k = 0; k < cfg.num_keys; ++k) {
    store.Put(k, std::string(cfg.payload_bytes,
                             static_cast<char>('a' + (k % 26))));
  }
  LogStoreDataService fast(&store, /*num_shards=*/4);
  SpikyService spiky(&fast, cfg.spike_every, cfg.spike_seconds);

  RpcServer primary(&spiky, EchoFn());
  RpcServer sibling(&fast, EchoFn());
  if (!primary.Start().ok() || !sibling.Start().ok()) {
    std::fprintf(stderr, "cannot start loopback servers\n");
    return 1;
  }
  std::vector<RpcEndpoint> eps{{primary.host(), primary.port()},
                               {sibling.host(), sibling.port()}};

  std::printf("\nhedging sweep (%" PRId64 " fetches/cell, %.0f%% spikes of "
              "%.0f ms at the primary):\n",
              cfg.ops_per_cell, 100.0 / cfg.spike_every,
              cfg.spike_seconds * 1e3);
  std::printf("%12s %8s %10s %10s %10s %8s %8s %9s\n", "percentile",
              "budget", "p50_us", "p99_us", "p999_us", "sent", "won",
              "rate");

  auto print_cell = [](const CellResult& c) {
    char label[32];
    if (c.percentile <= 0) {
      std::snprintf(label, sizeof label, "%s", "unhedged");
    } else {
      std::snprintf(label, sizeof label, "p%.0f", c.percentile * 100.0);
    }
    std::printf("%12s %8.2f %10.1f %10.1f %10.1f %8" PRId64 " %8" PRId64
                " %8.1f%%\n",
                label, c.budget, c.latency.p50() * 1e6,
                c.latency.p99() * 1e6, c.latency.p999() * 1e6,
                c.hedges_sent, c.hedges_won, 100.0 * c.realized_rate);
    std::fflush(stdout);
  };

  CellResult baseline = RunCell(cfg, eps, /*percentile=*/0, /*budget=*/0);
  print_cell(baseline);

  std::vector<CellResult> cells;
  for (double percentile : {0.90, 0.95, 0.99}) {
    for (double budget : {0.01, 0.05, 0.10}) {
      cells.push_back(RunCell(cfg, eps, percentile, budget));
      print_cell(cells.back());
    }
  }

  SelectionResult sel = RunSelection(cfg);
  std::printf("\nreplica selection (%" PRId64
              " picks, replica 2 degraded 20x):\n",
              cfg.selection_picks);
  std::printf("%10s mean=%8.1f us  p99=%8.1f us  degraded_picks=%" PRId64
              "\n",
              "random", sel.random_mean * 1e6, sel.random_p99 * 1e6,
              sel.random_degraded_picks);
  std::printf("%10s mean=%8.1f us  p99=%8.1f us  degraded_picks=%" PRId64
              "\n",
              "p2c", sel.p2c_mean * 1e6, sel.p2c_p99 * 1e6,
              sel.p2c_degraded_picks);

  FILE* json = std::fopen("BENCH_tail_latency.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_tail_latency.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"tail_latency\",\n");
  std::fprintf(json, "  \"scale\": %.3f,\n", scale);
  std::fprintf(json, "  \"straggler\": {\"spike_every\": %d, "
               "\"spike_seconds\": %.3e},\n",
               cfg.spike_every, cfg.spike_seconds);
  std::fprintf(json, "  \"unhedged\": {");
  baseline.latency.JsonFields(json, "latency");
  std::fprintf(json, "},\n");
  std::fprintf(json, "  \"hedging_sweep\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    std::fprintf(json,
                 "    {\"percentile\": %.2f, \"budget\": %.2f, "
                 "\"hedges_sent\": %" PRId64 ", \"hedges_won\": %" PRId64
                 ", \"realized_rate\": %.4f, ",
                 c.percentile, c.budget, c.hedges_sent, c.hedges_won,
                 c.realized_rate);
    c.latency.JsonFields(json, "latency");
    std::fprintf(json, "}%s\n", i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json,
               "  \"replica_selection\": {\"picks\": %" PRId64
               ", \"random_mean_seconds\": %.6e, \"random_p99_seconds\": "
               "%.6e, \"random_degraded_picks\": %" PRId64
               ", \"p2c_mean_seconds\": %.6e, \"p2c_p99_seconds\": %.6e, "
               "\"p2c_degraded_picks\": %" PRId64 "}\n",
               cfg.selection_picks, sel.random_mean, sel.random_p99,
               sel.random_degraded_picks, sel.p2c_mean, sel.p2c_p99,
               sel.p2c_degraded_picks);
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("wrote BENCH_tail_latency.json\n");

  // --- CI gates -------------------------------------------------------
  int failures = 0;
  const CellResult* default_cell = nullptr;
  for (const CellResult& c : cells) {
    if (c.percentile == 0.95 && c.budget == 0.05) default_cell = &c;
    if (c.realized_rate > c.budget + 1e-9) {
      std::fprintf(stderr,
                   "FAIL: realized hedge rate %.4f exceeds budget %.2f "
                   "(percentile %.2f)\n",
                   c.realized_rate, c.budget, c.percentile);
      ++failures;
    }
  }
  if (default_cell == nullptr) {
    std::fprintf(stderr, "FAIL: default p95/5%% cell missing from sweep\n");
    ++failures;
  } else if (default_cell->latency.p99() > baseline.latency.p99()) {
    std::fprintf(stderr,
                 "FAIL: hedged p99 %.1f us worse than unhedged %.1f us\n",
                 default_cell->latency.p99() * 1e6,
                 baseline.latency.p99() * 1e6);
    ++failures;
  }
  if (sel.p2c_mean >= sel.random_mean) {
    std::fprintf(stderr,
                 "FAIL: p2c mean %.1f us not better than random %.1f us\n",
                 sel.p2c_mean * 1e6, sel.random_mean * 1e6);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace joinopt

int main() { return joinopt::bench::Main(); }
