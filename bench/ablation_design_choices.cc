// Ablations of the design choices DESIGN.md calls out. Each section varies
// one knob on a fixed workload and reports end-to-end makespan, so every
// claimed design decision has a measured justification:
//
//  A. Eviction policy: LFU-DA (paper) vs LRU vs plain LFU under a shifting
//     distribution (aging matters exactly there).
//  B. Frequency counter: Lossy Counting (paper) vs Space-Saving vs exact.
//  C. Balancer minimizer: gradient descent (paper) vs exact enumeration.
//  D. Batch size sweep (Section 7.2's static choice).
//  E. Memory cache capacity sweep (Section 9's 100 MB limit).
#include <vector>

#include "bench_common.h"
#include "joinopt/common/random.h"
#include "joinopt/freq/exact_counter.h"
#include "joinopt/freq/lossy_counting.h"
#include "joinopt/freq/space_saving.h"
#include "joinopt/workload/synthetic.h"

namespace joinopt {
namespace bench {
namespace {

GeneratedWorkload ShiftingWorkload(const NodeLayout& layout, double scale) {
  SyntheticConfig cfg;
  cfg.kind = SyntheticKind::kDataHeavy;  // 100 KB values: cache pressure
  cfg.zipf_z = 1.0;
  cfg.tuples_per_node = static_cast<int>(6000 * scale);
  cfg.num_keys = static_cast<int>(50000 * scale);
  cfg.popularity_shifts = 8;
  return MakeSyntheticWorkload(cfg, layout);
}

GeneratedWorkload StaticWorkload(const NodeLayout& layout, double scale,
                                 double z = 1.0) {
  SyntheticConfig cfg;
  cfg.kind = SyntheticKind::kDataComputeHeavy;
  cfg.zipf_z = z;
  cfg.tuples_per_node = static_cast<int>(3000 * scale);
  cfg.num_keys = static_cast<int>(50000 * scale);
  return MakeSyntheticWorkload(cfg, layout);
}

FrameworkRunConfig BaseRun() {
  FrameworkRunConfig run;
  run.cluster = PaperCluster();
  run.engine = PaperEngine();
  run.engine.data_node_block_cache_bytes = 0;  // cold-read regime
  return run;
}

void EvictionAblation(const NodeLayout& layout, double scale) {
  GeneratedWorkload w = ShiftingWorkload(layout, scale);
  ReportTable table({"eviction policy", "makespan", "mem hits", "disk hits"});
  for (auto [kind, name] :
       {std::pair{EvictionKind::kLfuDa, "LFU-DA (paper)"},
        std::pair{EvictionKind::kLru, "LRU"},
        std::pair{EvictionKind::kLfu, "LFU (no aging)"}}) {
    FrameworkRunConfig run = BaseRun();
    run.engine.decision.eviction = kind;
    // Tight memory tier (~200 items of 100 KB) so eviction quality matters.
    run.engine.decision.cache.memory_capacity_bytes = 20.0 * 1024 * 1024;
    JobResult r = RunFrameworkJob(w, Strategy::kFO, run);
    table.AddRow({name, FormatDuration(r.makespan),
                  std::to_string(r.cache_memory_hits),
                  std::to_string(r.cache_disk_hits)});
  }
  table.Print("A. Eviction policy under a shifting distribution (DH, z=1.0, "
              "8 shifts, 20 MB memory tier)");
}

void CounterAblation(const NodeLayout& layout, double scale) {
  GeneratedWorkload w = StaticWorkload(layout, scale, 1.2);
  ReportTable table({"counter", "makespan", "memory hits"});
  for (auto [kind, name] :
       {std::pair{CounterKind::kLossyCounting, "Lossy Counting (paper)"},
        std::pair{CounterKind::kSpaceSaving, "Space-Saving"},
        std::pair{CounterKind::kExact, "Exact hashmap"}}) {
    FrameworkRunConfig run = BaseRun();
    run.engine.decision.counter = kind;
    JobResult r = RunFrameworkJob(w, Strategy::kFO, run);
    table.AddRow({name, FormatDuration(r.makespan),
                  std::to_string(r.cache_memory_hits)});
  }
  table.Print("B. Frequency counter, end-to-end (DCH, z=1.2)");

  // Decision quality is interchangeable; the differentiator is memory. Feed
  // each counter a long adversarial stream and compare footprints.
  ReportTable mem({"counter", "keys tracked", "heavy hitter count (true "
                   "~150000)"});
  {
    Rng rng(41);
    ZipfDistribution zipf(5'000'000, 1.05);
    LossyCounting lossy(1e-5);
    SpaceSaving ss(1 << 16);
    ExactCounter exact;
    const int64_t n = 3'000'000;
    for (int64_t i = 0; i < n; ++i) {
      Key k = zipf.Sample(rng);
      lossy.Observe(k);
      ss.Observe(k);
      exact.Observe(k);
    }
    mem.AddRow({"Lossy Counting (paper)", std::to_string(lossy.TrackedKeys()),
                std::to_string(lossy.EstimatedCount(0))});
    mem.AddRow({"Space-Saving", std::to_string(ss.TrackedKeys()),
                std::to_string(ss.EstimatedCount(0))});
    mem.AddRow({"Exact hashmap", std::to_string(exact.TrackedKeys()),
                std::to_string(exact.EstimatedCount(0))});
  }
  mem.Print("B'. Counter memory on a 3M-tuple stream over 5M keys");
}

void MinimizerAblation(const NodeLayout& layout, double scale) {
  GeneratedWorkload w = StaticWorkload(layout, scale, 0.5);
  ReportTable table({"balancer minimizer", "makespan", "computed at data"});
  for (auto [kind, name] :
       {std::pair{MinimizerKind::kGradientDescent, "gradient descent (paper)"},
        std::pair{MinimizerKind::kExact, "exact enumeration"}}) {
    FrameworkRunConfig run = BaseRun();
    run.engine.balancer.minimizer = kind;
    JobResult r = RunFrameworkJob(w, Strategy::kFO, run);
    table.AddRow({name, FormatDuration(r.makespan),
                  std::to_string(r.computed_at_data)});
  }
  table.Print("C. Balancer minimizer (DCH, z=0.5)");
}

void BatchSizeAblation(const NodeLayout& layout, double scale) {
  GeneratedWorkload w = StaticWorkload(layout, scale, 1.0);
  ReportTable table({"batch size", "makespan", "network msgs"});
  for (int batch : {1, 16, 64, 256, 1024}) {
    FrameworkRunConfig run = BaseRun();
    run.engine.batch_size = batch;
    JobResult r = RunFrameworkJob(w, Strategy::kFO, run);
    table.AddRow({std::to_string(batch), FormatDuration(r.makespan),
                  std::to_string(r.network_messages)});
  }
  table.Print("D. Batch size sweep (DCH, z=1.0)");
}

void CacheSizeAblation(const NodeLayout& layout, double scale) {
  SyntheticConfig cfg;
  cfg.kind = SyntheticKind::kDataHeavy;  // caching is decisive for DH
  cfg.zipf_z = 1.2;
  cfg.tuples_per_node = static_cast<int>(3000 * scale);
  cfg.num_keys = static_cast<int>(50000 * scale);
  cfg.tuples_per_node = static_cast<int>(6000 * scale);  // enough buys
  GeneratedWorkload w = MakeSyntheticWorkload(cfg, layout);
  ReportTable table({"memory cache", "makespan", "mem hits", "disk hits"});
  for (double mb : {2.0, 10.0, 50.0, 100.0, 500.0}) {
    FrameworkRunConfig run = BaseRun();
    run.engine.decision.cache.memory_capacity_bytes = mb * 1024 * 1024;
    JobResult r = RunFrameworkJob(w, Strategy::kFO, run);
    table.AddRow({FormatDouble(mb, 0) + " MB", FormatDuration(r.makespan),
                  std::to_string(r.cache_memory_hits),
                  std::to_string(r.cache_disk_hits)});
  }
  table.Print("E. Memory cache capacity (DH, z=1.2)");
}

void OffloadExtensionAblation(const NodeLayout& layout, double scale) {
  // The paper's footnote-4 regime: very high skew + high compute cost, all
  // cached work piles on the compute nodes while data nodes idle.
  SyntheticConfig cfg;
  cfg.kind = SyntheticKind::kComputeHeavy;
  cfg.zipf_z = 1.5;
  cfg.tuples_per_node = static_cast<int>(3000 * scale);
  cfg.num_keys = static_cast<int>(50000 * scale);
  GeneratedWorkload w = MakeSyntheticWorkload(cfg, layout);
  ReportTable table({"FO variant", "makespan", "UDFs at data nodes"});
  for (bool offload : {false, true}) {
    FrameworkRunConfig run = BaseRun();
    run.engine.offload_cached_under_overload = offload;
    JobResult r = RunFrameworkJob(w, Strategy::kFO, run);
    table.AddRow({offload ? "offload-cached extension" : "paper FO",
                  FormatDuration(r.makespan),
                  std::to_string(r.computed_at_data)});
  }
  table.Print("F. Offload-cached extension (paper future work; CH, z=1.5)");
}

void DynamicBatchAblation(const NodeLayout& layout, double scale) {
  GeneratedWorkload w = StaticWorkload(layout, scale, 1.0);
  ReportTable table({"batching", "makespan", "network msgs"});
  for (bool dynamic : {false, true}) {
    FrameworkRunConfig run = BaseRun();
    run.engine.dynamic_batch_size = dynamic;
    JobResult r = RunFrameworkJob(w, Strategy::kFO, run);
    table.AddRow({dynamic ? "dynamic sizing extension" : "static (paper)",
                  FormatDuration(r.makespan),
                  std::to_string(r.network_messages)});
  }
  table.Print("G. Dynamic batch sizing (paper future work; DCH, z=1.0)");
}

}  // namespace
}  // namespace bench
}  // namespace joinopt

int main() {
  using namespace joinopt;
  using namespace joinopt::bench;
  const double scale = BenchScale();
  PrintHeader("Ablations: design choices called out in DESIGN.md",
              "LFU-DA >= LRU/LFU under shifts; counters interchangeable "
              "(lossy cheapest); GD ~= exact; batching decisive; cache size "
              "matters up to the hot-set size");
  FrameworkRunConfig base;
  base.cluster = PaperCluster();
  NodeLayout layout = NodeLayout::Of(base.cluster.num_compute_nodes,
                                     base.cluster.num_data_nodes);
  EvictionAblation(layout, scale);
  CounterAblation(layout, scale);
  MinimizerAblation(layout, scale);
  BatchSizeAblation(layout, scale);
  CacheSizeAblation(layout, scale);
  OffloadExtensionAblation(layout, scale);
  DynamicBatchAblation(layout, scale);
  return 0;
}
