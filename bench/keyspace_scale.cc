// Key-space scaling sweep for the compact per-key state (DESIGN.md §14):
// drives a real DecisionEngine over universes of 10^6, 10^7 and 10^8
// distinct keys (scaled by JOINOPT_BENCH_SCALE) and reports
//   * bytes/key — both accounted (FlatMap/heap MemoryBytes sums) and
//     RSS-derived (/proc/self/status VmRSS delta across the populate),
//   * ns/decision p50/p99 under a zipf(0.99) access stream, and
//   * the same numbers for a baseline replica built from the pre-§14
//     layouts (std::unordered_map nodes for meta/counter/cache items plus
//     a std::multimap benefit index with an iterator stored per item).
// The baseline's accounted bytes are reported two ways: bytes requested
// from the allocator, and the glibc malloc chunk estimate
// (max(32, round16(request + 8))) — node containers pay the per-chunk tax
// on every element, the arena-backed flat tables do not. The baseline is
// skipped above JOINOPT_KEYSPACE_BASELINE_CAP keys (default 2*10^7): at
// 10^8 it would need ~25 GB and tens of minutes of rb-tree churn.
//
// A container-level probe comparison (FlatMap<KeyMeta> vs
// std::unordered_map<Key, KeyMeta>, same payload, zipf finds with a 1/16
// write mix) isolates the probe path from engine logic for the latency
// gate.
//
// Gate mode (--gate or JOINOPT_BENCH_GATE=1) fails the run unless
//   * the cache-structure bytes/key ratio (baseline chunk-accounted
//     items-map + multimap vs compact table + intrusive heaps) is at least
//     JOINOPT_KEYSPACE_RATIO_MIN (default 3.0) at the largest universe
//     where the baseline ran, and
//   * the compact probe p99 is at most JOINOPT_KEYSPACE_P99_FACTOR
//     (default 1.25) times the baseline probe p99 at the smallest
//     universe.
//
// Emits BENCH_keyspace_scale.json. The full scale=1 sweep peaks around
// 11-12 GB RSS during the 10^8-key phase (documented budget: 16 GB) and
// takes a few minutes on one core.

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <limits>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "joinopt/common/arena.h"
#include "joinopt/common/flat_map.h"
#include "joinopt/common/random.h"
#include "joinopt/skirental/decision_engine.h"

namespace joinopt {
namespace bench {
namespace {

constexpr NodeId kDataNode = 7;
constexpr double kValueBytes = 256.0;
constexpr double kZipfSkew = 0.99;

int64_t CurrentRssBytes() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  int64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %" PRId64 " kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb * 1024;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---- Baseline allocation accounting ---------------------------------------

struct AllocCounters {
  size_t requested = 0;  // sum of n * sizeof(T) across live allocations
  size_t chunk = 0;      // glibc chunk estimate for the same allocations
};
AllocCounters g_alloc;

size_t MallocChunkBytes(size_t request) {
  size_t c = (request + 8 + 15) & ~static_cast<size_t>(15);
  return c < 32 ? 32 : c;
}

template <typename T>
struct CountingAlloc {
  using value_type = T;
  CountingAlloc() = default;
  template <typename U>
  CountingAlloc(const CountingAlloc<U>&) {}  // NOLINT: converting ctor
  T* allocate(size_t n) {
    g_alloc.requested += n * sizeof(T);
    g_alloc.chunk += MallocChunkBytes(n * sizeof(T));
    return std::allocator<T>().allocate(n);
  }
  void deallocate(T* p, size_t n) {
    g_alloc.requested -= n * sizeof(T);
    g_alloc.chunk -= MallocChunkBytes(n * sizeof(T));
    std::allocator<T>().deallocate(p, n);
  }
  template <typename U>
  bool operator==(const CountingAlloc<U>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const CountingAlloc<U>&) const {
    return false;
  }
};

// ---- Baseline replica: the pre-§14 per-key layouts ------------------------

// KeyMeta as it was: doubles plus a full version word, one unordered node.
struct OldKeyMeta {
  double stored_value_bytes;
  double last_benefit;
  uint64_t version;
};

using OldBenefitKey = std::pair<double, uint32_t>;  // (benefit, fifo seq)
using OldBenefitIndex =
    std::multimap<OldBenefitKey, Key, std::less<OldBenefitKey>,
                  CountingAlloc<std::pair<const OldBenefitKey, Key>>>;

// Cache item as it was: scalar fields plus the multimap iterator that made
// benefit updates O(log n) with a second node allocation per item.
struct OldItem {
  double size;
  double benefit;
  int tier;
  OldBenefitIndex::iterator order;
};

template <typename V>
using OldMap =
    std::unordered_map<Key, V, std::hash<Key>, std::equal_to<Key>,
                       CountingAlloc<std::pair<const Key, V>>>;

struct BaselineBytes {
  size_t meta_requested = 0, meta_chunk = 0;
  size_t counter_requested = 0, counter_chunk = 0;
  size_t cache_requested = 0, cache_chunk = 0;
  size_t total_requested() const {
    return meta_requested + counter_requested + cache_requested;
  }
  size_t total_chunk() const {
    return meta_chunk + counter_chunk + cache_chunk;
  }
};

// ---- Per-universe results --------------------------------------------------

struct SideResult {
  bool ran = false;
  size_t keys = 0;
  size_t accounted_bytes = 0;        // compact: MemoryBytes sums
  size_t accounted_chunk_bytes = 0;  // baseline: malloc chunk estimate
  size_t cache_bytes = 0;            // cache structures only (same basis)
  int64_t rss_delta_bytes = 0;
  double populate_seconds = 0;
};

// Decide latencies are recorded as batch-of-8 totals: a single Decide
// (~0.1-1 us) sits below the LatencyRecorder histogram's 1 us floor, the
// batch total does not. Per-op figures are derived by dividing by 8.
constexpr int kDecideBatch = 8;

struct UniverseResult {
  uint64_t universe = 0;
  SideResult compact;
  SideResult baseline;
  LatencyRecorder decide;  // batch-of-kDecideBatch Decide totals
};

// Container probes are far below the histogram floor, so exact quantiles
// come from the raw batch samples instead.
struct ProbeQuantiles {
  double p50_ns = 0;
  double p99_ns = 0;
};

struct ProbeResult {
  uint64_t universe = 0;
  ProbeQuantiles flat;
  ProbeQuantiles unordered;
};

// Decision-hot-path micro: every Decide does a cache Lookup plus an
// UpdateBenefit reorder. Compact side = the real TieredCache (intrusive
// heap sift, zero allocations, mutex included); baseline side = the
// pre-§14 structures (unordered_map find + multimap erase + re-emplace,
// one rb-tree node alloc/free per op). This is the op the latency gate
// protects.
struct UpdateResult {
  uint64_t universe = 0;
  ProbeQuantiles compact;
  ProbeQuantiles baseline;
};

ProbeQuantiles ExactQuantiles(std::vector<double>& batch_seconds,
                              int batch) {
  ProbeQuantiles q;
  if (batch_seconds.empty()) return q;
  std::sort(batch_seconds.begin(), batch_seconds.end());
  auto at = [&](double p) {
    size_t i = static_cast<size_t>(p * static_cast<double>(
                                           batch_seconds.size() - 1));
    return batch_seconds[i] / batch * 1e9;
  };
  q.p50_ns = at(0.50);
  q.p99_ns = at(0.99);
  return q;
}

// ---- Compact side: a real DecisionEngine -----------------------------------

// Costs chosen so the second Decide for a key buys immediately (fetching
// 256 B over 1 GB/s beats a 50 ms remote UDF), filling the cache index:
// a slice fits in the memory tier, the rest lands on the unbounded disk
// tier — per-key state in all three structures, like a long-running
// compute node tracking its whole key universe.
UniverseResult RunCompact(uint64_t universe) {
  UniverseResult out;
  out.universe = universe;
  out.compact.ran = true;

  int64_t rss0 = CurrentRssBytes();
  double t0 = NowSeconds();

  DecisionEngineConfig cfg;
  cfg.counter = CounterKind::kExact;
  cfg.expected_keys = universe;
  cfg.max_key_meta = universe + 16;
  cfg.cache.expected_items = universe;
  cfg.cache.memory_capacity_bytes = 16.0 * 1024 * 1024;
  cfg.cache.disk_capacity_bytes = std::numeric_limits<double>::infinity();
  DecisionEngine engine(cfg);
  engine.cost_model().SetBandwidth(kDataNode, 1e9);
  engine.cost_model().ObserveSizes(16.0, 64.0, kValueBytes, -1);
  engine.ObserveLocalCompute(1e-3);
  engine.ObserveLocalDisk(2e-3);

  size_t inserted = 0;
  for (uint64_t k = 1; k <= universe; ++k) {
    // First request: costs unknown -> compute request + piggybacked report.
    // Second request: fetch is cheaper -> buy into memory or disk tier.
    bool resident = false;
    for (int attempt = 0; attempt < 4 && !resident; ++attempt) {
      Decision d = engine.Decide(k, kDataNode);
      switch (d.route) {
        case Route::kComputeAtData:
          engine.OnComputeResponse(k, kDataNode, kValueBytes, 1,
                                   {1e-4, 0.05});
          break;
        case Route::kFetchCacheMemory:
        case Route::kFetchCacheDisk:
          engine.OnValueFetched(k, d.route, kValueBytes, 1);
          ++inserted;
          resident = true;
          break;
        case Route::kLocalMemoryHit:
        case Route::kLocalDiskHit:
          resident = true;
          break;
      }
    }
  }
  out.compact.populate_seconds = NowSeconds() - t0;
  out.compact.keys = inserted;
  out.compact.accounted_bytes =
      engine.AccountedBytes() + engine.cache().AccountedBytes();
  out.compact.cache_bytes = engine.cache().AccountedBytes();
  out.compact.rss_delta_bytes = CurrentRssBytes() - rss0;

  // Decision hot path: zipf over the populated universe. Keys are sampled
  // up front (the rejection-inversion sampler costs more than a Decide);
  // ops run batched 8 per clock sample so timer overhead (~25 ns) does not
  // swamp a ~100 ns op — recorded latencies are batch means.
  Rng rng(0x4b1d0000u + universe);
  ZipfDistribution zipf(universe, kZipfSkew);
  const int64_t ops = std::min<int64_t>(
      2000000, std::max<int64_t>(200000, static_cast<int64_t>(universe / 20)));
  std::vector<Key> keys(static_cast<size_t>(ops));
  for (Key& k : keys) k = static_cast<Key>(zipf.Sample(rng)) + 1;
  for (int64_t i = 0; i + kDecideBatch <= ops; i += kDecideBatch) {
    double start = NowSeconds();
    for (int b = 0; b < kDecideBatch; ++b) {
      Decision d = engine.Decide(keys[static_cast<size_t>(i + b)], kDataNode);
      (void)d;
    }
    out.decide.Observe(NowSeconds() - start);
  }
  return out;
}

// ---- Baseline side ---------------------------------------------------------

void RunBaseline(uint64_t universe, UniverseResult* out) {
  out->baseline.ran = true;
  int64_t rss0 = CurrentRssBytes();
  double t0 = NowSeconds();

  AllocCounters before = g_alloc;
  BaselineBytes bytes;
  {
    OldMap<OldKeyMeta> meta;
    OldMap<int64_t> counts;
    OldMap<OldItem> items;
    OldBenefitIndex order;
    for (uint64_t k = 1; k <= universe; ++k) {
      meta.emplace(k, OldKeyMeta{kValueBytes, 1.0, 1});
    }
    bytes.meta_requested = g_alloc.requested - before.requested;
    bytes.meta_chunk = g_alloc.chunk - before.chunk;
    AllocCounters mid = g_alloc;
    for (uint64_t k = 1; k <= universe; ++k) {
      ++counts[k];
    }
    bytes.counter_requested = g_alloc.requested - mid.requested;
    bytes.counter_chunk = g_alloc.chunk - mid.chunk;
    mid = g_alloc;
    uint32_t seq = 0;
    for (uint64_t k = 1; k <= universe; ++k) {
      auto it = order.emplace(OldBenefitKey{1.0, seq++}, k);
      items.emplace(k, OldItem{kValueBytes, 1.0, 1, it});
    }
    bytes.cache_requested = g_alloc.requested - mid.requested;
    bytes.cache_chunk = g_alloc.chunk - mid.chunk;

    out->baseline.populate_seconds = NowSeconds() - t0;
    out->baseline.keys = universe;
    out->baseline.accounted_bytes = bytes.total_requested();
    out->baseline.accounted_chunk_bytes = bytes.total_chunk();
    out->baseline.cache_bytes = bytes.cache_chunk;
    out->baseline.rss_delta_bytes = CurrentRssBytes() - rss0;
  }
}

// ---- Container-level probe comparison --------------------------------------

// Same packed 16-byte payload in both containers: this isolates probe-path
// cost (open addressing + slab deref vs identity hash + prime modulo +
// bucket chain) from payload-size effects.
struct ProbePayload {
  float a;
  float b;
  uint64_t c;
};

ProbeResult RunProbe(uint64_t universe) {
  ProbeResult out;
  out.universe = universe;
  const int64_t ops = 2000000;
  constexpr int kBatch = 64;
  ZipfDistribution zipf(universe, kZipfSkew);
  Rng rng(0xfeed0001u);
  std::vector<Key> keys(static_cast<size_t>(ops));
  for (Key& k : keys) k = static_cast<Key>(zipf.Sample(rng)) + 1;
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(ops / kBatch));

  {
    Arena arena;
    FlatMap<ProbePayload> flat(&arena, 0x9d2c5680u);
    flat.Reserve(universe);
    for (uint64_t k = 1; k <= universe; ++k) {
      *flat.TryEmplace(k).first = ProbePayload{1.0f, 2.0f, k};
    }
    for (int64_t i = 0; i + kBatch <= ops; i += kBatch) {
      double start = NowSeconds();
      for (int b = 0; b < kBatch; ++b) {
        Key k = keys[static_cast<size_t>(i + b)];
        ProbePayload* p = flat.Find(k);
        if (p != nullptr && (k & 15) == 0) p->a += 1.0f;
      }
      samples.push_back(NowSeconds() - start);
    }
    out.flat = ExactQuantiles(samples, kBatch);
  }
  samples.clear();
  {
    std::unordered_map<Key, ProbePayload> ref;
    ref.reserve(universe);
    for (uint64_t k = 1; k <= universe; ++k) {
      ref.emplace(k, ProbePayload{1.0f, 2.0f, k});
    }
    for (int64_t i = 0; i + kBatch <= ops; i += kBatch) {
      double start = NowSeconds();
      for (int b = 0; b < kBatch; ++b) {
        Key k = keys[static_cast<size_t>(i + b)];
        auto it = ref.find(k);
        if (it != ref.end() && (k & 15) == 0) it->second.a += 1.0f;
      }
      samples.push_back(NowSeconds() - start);
    }
    out.unordered = ExactQuantiles(samples, kBatch);
  }
  return out;
}

UpdateResult RunUpdateMicro(uint64_t universe) {
  UpdateResult out;
  out.universe = universe;
  const int64_t ops = 1000000;
  constexpr int kBatch = 64;
  ZipfDistribution zipf(universe, kZipfSkew);
  Rng rng(0xcafe0002u);
  std::vector<Key> keys(static_cast<size_t>(ops));
  for (Key& k : keys) k = static_cast<Key>(zipf.Sample(rng)) + 1;
  auto benefit_at = [](uint64_t k) {
    return 1.0 + static_cast<double>(k & 1023) * 1e-3;
  };
  // Per-op target benefits force genuine reorders on both sides.
  auto next_benefit = [](int64_t i, Key k) {
    return 1.0 + static_cast<double>((static_cast<uint64_t>(i) * 2654435761u +
                                      k) &
                                     1048575) *
                     1e-6;
  };
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(ops / kBatch));

  {
    LfuDaPolicy policy;
    TieredCacheConfig cfg;
    cfg.memory_capacity_bytes = 1e18;  // keep every item memory-resident
    cfg.expected_items = universe;
    TieredCache cache(cfg, &policy);
    for (uint64_t k = 1; k <= universe; ++k) {
      cache.CondCacheInMemory(k, kValueBytes, benefit_at(k), true);
    }
    for (int64_t i = 0; i + kBatch <= ops; i += kBatch) {
      double start = NowSeconds();
      for (int b = 0; b < kBatch; ++b) {
        Key k = keys[static_cast<size_t>(i + b)];
        cache.Lookup(k);
        cache.UpdateBenefit(k, next_benefit(i + b, k));
      }
      samples.push_back(NowSeconds() - start);
    }
    out.compact = ExactQuantiles(samples, kBatch);
  }
  samples.clear();
  {
    std::unordered_map<Key, OldItem> items;
    OldBenefitIndex order;
    items.reserve(universe);
    uint32_t seq = 0;
    for (uint64_t k = 1; k <= universe; ++k) {
      auto it = order.emplace(OldBenefitKey{benefit_at(k), seq++}, k);
      items.emplace(k, OldItem{kValueBytes, benefit_at(k), 0, it});
    }
    for (int64_t i = 0; i + kBatch <= ops; i += kBatch) {
      double start = NowSeconds();
      for (int b = 0; b < kBatch; ++b) {
        Key k = keys[static_cast<size_t>(i + b)];
        auto lookup = items.find(k);  // the old Lookup's tier read
        if (lookup == items.end()) continue;
        auto it = items.find(k);  // the old UpdateBenefit's own find
        double nb = next_benefit(i + b, k);
        order.erase(it->second.order);
        it->second.order = order.emplace(OldBenefitKey{nb, seq++}, k);
        it->second.benefit = nb;
      }
      samples.push_back(NowSeconds() - start);
    }
    out.baseline = ExactQuantiles(samples, kBatch);
  }
  return out;
}

// ---- Reporting -------------------------------------------------------------

double PerKey(size_t bytes, size_t keys) {
  return keys == 0 ? 0.0 : static_cast<double>(bytes) /
                               static_cast<double>(keys);
}

void PrintUniverse(const UniverseResult& r) {
  const SideResult& c = r.compact;
  std::printf("N=%" PRIu64 "  compact: %.1f B/key accounted "
              "(cache %.1f), RSS delta %.1f B/key, populate %.1fs\n",
              r.universe, PerKey(c.accounted_bytes, c.keys),
              PerKey(c.cache_bytes, c.keys),
              PerKey(static_cast<size_t>(
                         c.rss_delta_bytes > 0 ? c.rss_delta_bytes : 0),
                     c.keys),
              c.populate_seconds);
  std::printf("  decide (zipf): p50=%7.0f ns/op  p99=%7.0f ns/op  "
              "(batch-of-%d quantiles)\n",
              r.decide.p50() / kDecideBatch * 1e9,
              r.decide.p99() / kDecideBatch * 1e9, kDecideBatch);
  if (r.baseline.ran) {
    const SideResult& b = r.baseline;
    std::printf("          baseline: %.1f B/key requested, %.1f B/key "
                "malloc-chunk (cache %.1f), RSS delta %.1f B/key, "
                "populate %.1fs\n",
                PerKey(b.accounted_bytes, b.keys),
                PerKey(b.accounted_chunk_bytes, b.keys),
                PerKey(b.cache_bytes, b.keys),
                PerKey(static_cast<size_t>(
                           b.rss_delta_bytes > 0 ? b.rss_delta_bytes : 0),
                       b.keys),
                b.populate_seconds);
    std::printf("          ratios: total %.2fx (chunk) / %.2fx (requested), "
                "cache structures %.2fx\n",
                PerKey(b.accounted_chunk_bytes, b.keys) /
                    PerKey(c.accounted_bytes, c.keys),
                PerKey(b.accounted_bytes, b.keys) /
                    PerKey(c.accounted_bytes, c.keys),
                PerKey(b.cache_bytes, b.keys) /
                    PerKey(c.cache_bytes, c.keys));
  } else {
    std::printf("          baseline: skipped (above "
                "JOINOPT_KEYSPACE_BASELINE_CAP)\n");
  }
  std::fflush(stdout);
}

void JsonSide(FILE* f, const char* name, const SideResult& s) {
  if (!s.ran) {
    std::fprintf(f, "      \"%s\": null", name);
    return;
  }
  std::fprintf(f,
               "      \"%s\": {\"keys\": %zu, \"accounted_bytes\": %zu, "
               "\"accounted_chunk_bytes\": %zu, \"cache_bytes\": %zu, "
               "\"bytes_per_key\": %.2f, \"cache_bytes_per_key\": %.2f, "
               "\"rss_delta_bytes\": %" PRId64 ", "
               "\"populate_seconds\": %.3f}",
               name, s.keys, s.accounted_bytes, s.accounted_chunk_bytes,
               s.cache_bytes, PerKey(s.accounted_bytes, s.keys),
               PerKey(s.cache_bytes, s.keys), s.rss_delta_bytes,
               s.populate_seconds);
}

double EnvDouble(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  double v = std::atof(env);
  return v > 0 ? v : fallback;
}

}  // namespace
}  // namespace bench
}  // namespace joinopt

int main(int argc, char** argv) {
  using namespace joinopt;
  using namespace joinopt::bench;

  bool gate = std::getenv("JOINOPT_BENCH_GATE") != nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gate") == 0) gate = true;
  }
  const double scale = BenchScale();
  const double ratio_min = EnvDouble("JOINOPT_KEYSPACE_RATIO_MIN", 3.0);
  const double p99_factor = EnvDouble("JOINOPT_KEYSPACE_P99_FACTOR", 1.25);
  const uint64_t baseline_cap = static_cast<uint64_t>(
      EnvDouble("JOINOPT_KEYSPACE_BASELINE_CAP", 2e7));

  PrintHeader("keyspace_scale: per-key state at 10^6..10^8 keys",
              "compact tables hold ~100 B/key; node-based baseline pays "
              ">2x that, >3x on the cache structures");

  std::vector<uint64_t> universes;
  for (double base : {1e6, 1e7, 1e8}) {
    uint64_t n = static_cast<uint64_t>(base * scale);
    if (n < 1024) n = 1024;
    if (universes.empty() || n != universes.back()) universes.push_back(n);
  }

  std::vector<UniverseResult> results;
  for (uint64_t n : universes) {
    results.push_back(RunCompact(n));
    if (n <= baseline_cap) {
      RunBaseline(n, &results.back());
    }
    PrintUniverse(results.back());
  }

  // Both micros run at the largest universe: that is the cache-miss-bound
  // regime the compact layout targets (at toy sizes both containers are
  // L2-resident and the comparison only measures hash cost). The find
  // probe is informational — an identity-hash unordered_map beats any
  // mixing hash on a hot zipf working set — while the lookup+reorder
  // micro is the decision-hot-path op the gate protects.
  ProbeResult probe = RunProbe(universes.back());
  std::printf("find probe (N=%" PRIu64 "): FlatMap p50=%5.1f ns  "
              "p99=%5.1f ns   unordered_map p50=%5.1f ns  p99=%5.1f ns\n",
              probe.universe, probe.flat.p50_ns, probe.flat.p99_ns,
              probe.unordered.p50_ns, probe.unordered.p99_ns);
  UpdateResult upd = RunUpdateMicro(universes.back());
  std::printf("lookup+reorder (N=%" PRIu64 "): compact p50=%5.1f ns  "
              "p99=%5.1f ns   multimap p50=%5.1f ns  p99=%5.1f ns\n",
              upd.universe, upd.compact.p50_ns, upd.compact.p99_ns,
              upd.baseline.p50_ns, upd.baseline.p99_ns);

  // ---- Gate ----------------------------------------------------------------
  double cache_ratio = 0.0;
  uint64_t cache_ratio_universe = 0;
  for (const UniverseResult& r : results) {
    if (!r.baseline.ran) continue;
    cache_ratio = PerKey(r.baseline.cache_bytes, r.baseline.keys) /
                  PerKey(r.compact.cache_bytes, r.compact.keys);
    cache_ratio_universe = r.universe;
  }
  const double probe_ratio =
      upd.baseline.p99_ns > 0 ? upd.compact.p99_ns / upd.baseline.p99_ns
                              : 0.0;
  bool gate_ok = true;
  if (gate) {
    if (cache_ratio < ratio_min) {
      std::fprintf(stderr,
                   "GATE FAIL: cache-structure bytes/key ratio %.2fx < "
                   "%.2fx at N=%" PRIu64 "\n",
                   cache_ratio, ratio_min, cache_ratio_universe);
      gate_ok = false;
    }
    if (probe_ratio > p99_factor) {
      std::fprintf(stderr,
                   "GATE FAIL: compact lookup+reorder p99 is %.2fx the "
                   "multimap baseline p99 (limit %.2fx)\n",
                   probe_ratio, p99_factor);
      gate_ok = false;
    }
    std::printf("gate: cache ratio %.2fx (min %.2fx), lookup+reorder p99 "
                "ratio %.2fx (max %.2fx) -> %s\n",
                cache_ratio, ratio_min, probe_ratio, p99_factor,
                gate_ok ? "OK" : "FAIL");
  }

  // ---- JSON ----------------------------------------------------------------
  FILE* f = std::fopen("BENCH_keyspace_scale.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_keyspace_scale.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"keyspace_scale\",\n");
  std::fprintf(f, "  \"scale\": %.4f,\n", scale);
  std::fprintf(f, "  \"universes\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const UniverseResult& r = results[i];
    std::fprintf(f, "    {\n      \"universe\": %" PRIu64 ",\n", r.universe);
    JsonSide(f, "compact", r.compact);
    std::fprintf(f, ",\n");
    JsonSide(f, "baseline", r.baseline);
    std::fprintf(f, ",\n      ");
    r.decide.JsonFields(f, "decide_batch8");
    std::fprintf(f,
                 ", \"decide_p50_ns_per_op\": %.1f, "
                 "\"decide_p99_ns_per_op\": %.1f",
                 r.decide.p50() / kDecideBatch * 1e9,
                 r.decide.p99() / kDecideBatch * 1e9);
    std::fprintf(f, "\n    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"find_probe\": {\"universe\": %" PRIu64 ", "
               "\"flat_p50_ns\": %.1f, \"flat_p99_ns\": %.1f, "
               "\"unordered_p50_ns\": %.1f, \"unordered_p99_ns\": %.1f},\n",
               probe.universe, probe.flat.p50_ns, probe.flat.p99_ns,
               probe.unordered.p50_ns, probe.unordered.p99_ns);
  std::fprintf(f,
               "  \"lookup_reorder\": {\"universe\": %" PRIu64 ", "
               "\"compact_p50_ns\": %.1f, \"compact_p99_ns\": %.1f, "
               "\"multimap_p50_ns\": %.1f, \"multimap_p99_ns\": %.1f},\n",
               upd.universe, upd.compact.p50_ns, upd.compact.p99_ns,
               upd.baseline.p50_ns, upd.baseline.p99_ns);
  std::fprintf(f,
               "  \"gate\": {\"enabled\": %s, \"cache_ratio\": %.3f, "
               "\"cache_ratio_min\": %.3f, \"reorder_p99_ratio\": %.3f, "
               "\"reorder_p99_factor\": %.3f, \"ok\": %s}\n",
               gate ? "true" : "false", cache_ratio, ratio_min, probe_ratio,
               p99_factor, gate_ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_keyspace_scale.json\n");
  return gate_ok ? 0 : 1;
}
