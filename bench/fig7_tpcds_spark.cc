// Figure 7: multi-join TPC-DS queries (Q3, Q7, Q27, Q42) — SparkSQL-style
// shuffle hash joins (all 20 nodes) vs. our framework's pipelined indexed
// joins (10 compute + 10 data nodes, FO strategy). Lower is better.
//
// Paper shape: the framework beats SparkSQL on all four queries because it
// never shuffles the fact table; the gap grows with the number of joins.
#include "bench_common.h"
#include "joinopt/workload/tpcds_lite.h"

int main() {
  using namespace joinopt;
  using namespace joinopt::bench;
  const double scale = BenchScale();

  PrintHeader("Figure 7: TPC-DS multi-join on Spark (SF-lite)",
              "Our framework faster than SparkSQL on all of Q3/Q7/Q27/Q42");

  FrameworkRunConfig run;
  run.cluster = PaperCluster();
  run.engine = PaperEngine();
  // Batch analytics: latency is irrelevant, so run a short batch timeout
  // (Section 7.2: "the waiting time to trigger a batch of requests can be
  // adjusted") and a deeper prefetch window.
  run.engine.batch_max_wait = 1e-3;
  run.engine.max_outstanding = 512;
  NodeLayout layout = NodeLayout::Of(run.cluster.num_compute_nodes,
                                     run.cluster.num_data_nodes);

  TpcdsConfig cfg;
  // Dimension tables shrink more than the fact table so the probes-per-
  // dimension-row ratio stays in the SF=500 regime (store_sales is ~750x
  // customer_demographics there); otherwise cache warm-up dominates the
  // framework at bench scale.
  cfg.scale = scale * 0.15;
  // Large enough that both systems are bandwidth/CPU-bound (the SF=500
  // regime), not request-latency-bound.
  cfg.fact_rows_per_node = static_cast<int>(150000 * scale);
  int64_t fact_total =
      static_cast<int64_t>(cfg.fact_rows_per_node) *
      run.cluster.num_compute_nodes;

  ReportTable table(
      {"query", "joins", "SparkSQL", "our framework", "speedup"});
  for (TpcdsQuery q : AllTpcdsQueries()) {
    TpcdsQuerySpec spec = GetTpcdsQuerySpec(q, cfg.scale);
    JobResult spark = RunSparkBaselineJob(spec, fact_total, run.cluster);
    GeneratedWorkload workload = MakeTpcdsWorkload(q, cfg, layout);
    JobResult ours = RunFrameworkJob(workload, Strategy::kFO, run);
    table.AddRow({spec.name, std::to_string(spec.stages.size()),
                  FormatDuration(spark.makespan),
                  FormatDuration(ours.makespan),
                  FormatDouble(ours.makespan > 0
                                   ? spark.makespan / ours.makespan
                                   : 0,
                               2)});
  }
  table.Print("TPC-DS query time (lower is better)");
  return 0;
}
