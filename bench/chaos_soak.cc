// Chaos soak driver (DESIGN.md §16): stands up a real multi-node
// ClusterDeployment on loopback and runs RunChaosSoak — seeded kills,
// same-port restarts, half-open partitions and a controller crash against
// live zipf Put/Fetch/ExecuteBatch traffic — then prints the report and
// writes BENCH_chaos_soak.json.
//
// Flags:
//   --seconds=N   total soak length (default 10; CI uses 60, nightly 600)
//   --seed=N      scenario seed (printed in the report; replays the schedule)
//   --nodes=N     data nodes (default 4, rf=3)
//   --backend=X   thread | reactor (serving backend under fault)
//   --gate        exit nonzero unless every gate passes (CI mode)
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.h"
#include "joinopt/chaos/chaos_runner.h"

namespace joinopt {
namespace bench {
namespace {

bool ParseInt64Flag(const char* arg, const char* name, int64_t* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::strtoll(arg + len + 1, nullptr, 10);
  return true;
}

void WriteJson(const ChaosSoakReport& r, const ChaosSoakOptions& opts,
               const char* backend_name) {
  FILE* json = std::fopen("BENCH_chaos_soak.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_chaos_soak.json\n");
    return;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"chaos_soak\",\n");
  std::fprintf(json, "  \"seed\": %" PRIu64 ",\n", r.seed);
  std::fprintf(json, "  \"seconds\": %.1f,\n", r.seconds);
  std::fprintf(json, "  \"nodes\": %d,\n", opts.num_nodes);
  std::fprintf(json, "  \"replication_factor\": %d,\n",
               opts.replication_factor);
  std::fprintf(json, "  \"backend\": \"%s\",\n", backend_name);
  std::fprintf(json, "  \"passed\": %s,\n", r.passed ? "true" : "false");
  std::fprintf(json, "  \"faults\": {\n");
  std::fprintf(json, "    \"kills\": %d,\n", r.kills);
  std::fprintf(json, "    \"restarts\": %d,\n", r.restarts);
  std::fprintf(json, "    \"partitions\": %d,\n", r.partitions);
  std::fprintf(json, "    \"heals\": %d,\n", r.heals);
  std::fprintf(json, "    \"controller_crashes\": %d\n",
               r.controller_crashes);
  std::fprintf(json, "  },\n");
  std::fprintf(json, "  \"workload\": {\n");
  std::fprintf(json, "    \"ops\": %" PRId64 ",\n", r.workload.ops);
  std::fprintf(json, "    \"puts\": %" PRId64 ",\n", r.workload.puts);
  std::fprintf(json, "    \"puts_durable\": %" PRId64 ",\n",
               r.workload.puts_durable);
  std::fprintf(json, "    \"fetches\": %" PRId64 ",\n", r.workload.fetches);
  std::fprintf(json, "    \"batches\": %" PRId64 ",\n", r.workload.batches);
  std::fprintf(json, "    \"op_errors\": %" PRId64 "\n",
               r.workload.op_errors);
  std::fprintf(json, "  },\n");
  std::fprintf(json, "  \"oracle\": {\n");
  std::fprintf(json, "    \"reads_checked\": %" PRId64 ",\n",
               r.oracle.reads_checked);
  std::fprintf(json, "    \"durable_puts\": %" PRId64 ",\n",
               r.oracle.durable_puts);
  std::fprintf(json, "    \"violations\": %" PRId64 "\n",
               r.oracle.violations);
  std::fprintf(json, "  },\n");
  std::fprintf(json, "  \"throughput\": {\n");
  std::fprintf(json, "    \"calibration_ops_per_sec\": %.1f,\n",
               r.calibration_ops_per_sec);
  std::fprintf(json, "    \"faulted_ops_per_sec\": %.1f,\n",
               r.faulted_ops_per_sec);
  std::fprintf(json, "    \"ratio\": %.4f\n", r.throughput_ratio);
  std::fprintf(json, "  },\n");
  std::fprintf(json, "  \"rss\": {\n");
  std::fprintf(json, "    \"baseline_kb\": %" PRId64 ",\n", r.rss_baseline_kb);
  std::fprintf(json, "    \"end_kb\": %" PRId64 ",\n", r.rss_end_kb);
  std::fprintf(json, "    \"growth\": %.4f\n", r.rss_growth);
  std::fprintf(json, "  },\n");
  std::fprintf(json, "  \"store\": {\n");
  std::fprintf(json, "    \"live_kb\": %" PRId64 ",\n", r.store_live_kb);
  std::fprintf(json, "    \"total_kb\": %" PRId64 ",\n", r.store_total_kb);
  std::fprintf(json, "    \"compactions\": %" PRId64 "\n",
               r.store_compactions);
  std::fprintf(json, "  },\n");
  std::fprintf(json, "  \"repair\": {\n");
  std::fprintf(json, "    \"mismatches\": %" PRId64 ",\n",
               r.repair_mismatches);
  std::fprintf(json, "    \"syncs\": %" PRId64 ",\n", r.repair_syncs);
  std::fprintf(json, "    \"records_shipped\": %" PRId64 "\n",
               r.repair_records_shipped);
  std::fprintf(json, "  },\n");
  std::fprintf(json, "  \"hedging\": {\n");
  std::fprintf(json, "    \"batch_hedges_sent\": %" PRId64 ",\n",
               r.batch_hedges_sent);
  std::fprintf(json, "    \"batch_hedges_absorbed\": %" PRId64 "\n",
               r.batch_hedges_absorbed);
  std::fprintf(json, "  },\n");
  std::fprintf(json, "  \"subscriber\": {\n");
  std::fprintf(json, "    \"notifications\": %" PRId64 ",\n",
               r.subscriber_notifications);
  std::fprintf(json, "    \"resyncs\": %" PRId64 "\n", r.subscriber_resyncs);
  std::fprintf(json, "  }\n");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("wrote BENCH_chaos_soak.json\n");
}

}  // namespace
}  // namespace bench
}  // namespace joinopt

int main(int argc, char** argv) {
  using namespace joinopt;
  using namespace joinopt::bench;

  ChaosSoakOptions opts;
  bool gate = false;
  const char* backend_name = "thread";
  for (int i = 1; i < argc; ++i) {
    int64_t v = 0;
    if (ParseInt64Flag(argv[i], "--seconds", &v)) {
      opts.seconds = static_cast<double>(v);
    } else if (ParseInt64Flag(argv[i], "--seed", &v)) {
      opts.seed = static_cast<uint64_t>(v);
    } else if (ParseInt64Flag(argv[i], "--nodes", &v)) {
      opts.num_nodes = static_cast<int>(v);
    } else if (ParseInt64Flag(argv[i], "--put_pct", &v)) {
      opts.put_fraction = static_cast<double>(v) / 100.0;
    } else if (ParseInt64Flag(argv[i], "--batch_pct", &v)) {
      opts.batch_fraction = static_cast<double>(v) / 100.0;
    } else if (std::strcmp(argv[i], "--backend=reactor") == 0) {
      opts.backend = RpcBackend::kReactor;
      backend_name = "reactor";
    } else if (std::strcmp(argv[i], "--backend=thread") == 0) {
      opts.backend = RpcBackend::kThreadPerConnection;
      backend_name = "thread";
    } else if (std::strcmp(argv[i], "--gate") == 0) {
      gate = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seconds=N] [--seed=N] [--nodes=N] "
                   "[--backend=thread|reactor] [--gate]\n",
                   argv[0]);
      return 2;
    }
  }

  PrintHeader(
      "Chaos soak: sustained kills/restarts/half-open partitions + live "
      "anti-entropy",
      "the networked cluster survives a seeded fault schedule with zero "
      "invariant violations — no lost acked write, no stale read beyond "
      "the consistency mode, monotone epochs, bounded RSS — and repair "
      "re-converges replicas live, without restart");

  std::printf("soak: %ds, seed=%" PRIu64 ", %d nodes (rf=%d), backend=%s\n",
              static_cast<int>(opts.seconds), opts.seed, opts.num_nodes,
              opts.replication_factor, backend_name);
  std::fflush(stdout);

  ChaosSoakReport r = RunChaosSoak(opts);

  std::printf("\nfaults injected: %d kills, %d restarts, %d half-open "
              "partitions (%d healed), %d controller crash(es)\n",
              r.kills, r.restarts, r.partitions, r.heals,
              r.controller_crashes);
  std::printf("workload: %" PRId64 " ops (%" PRId64 " puts, %" PRId64
              " durable, %" PRId64 " fetches, %" PRId64 " batches, %" PRId64
              " transport errors)\n",
              r.workload.ops, r.workload.puts, r.workload.puts_durable,
              r.workload.fetches, r.workload.batches, r.workload.op_errors);
  std::printf("throughput: calibration %.0f ops/s, under faults %.0f ops/s "
              "(ratio %.2f, floor 0.50)\n",
              r.calibration_ops_per_sec, r.faulted_ops_per_sec,
              r.throughput_ratio);
  std::printf("rss: %" PRId64 " kB -> %" PRId64 " kB (%.1f%% growth)\n",
              r.rss_baseline_kb, r.rss_end_kb, r.rss_growth * 100.0);
  std::printf("stores: %" PRId64 " kB live / %" PRId64 " kB total across "
              "nodes, %" PRId64 " compactions\n",
              r.store_live_kb, r.store_total_kb, r.store_compactions);
  std::printf("anti-entropy: %" PRId64 " mismatches repaired via %" PRId64
              " syncs, %" PRId64 " records shipped\n",
              r.repair_mismatches, r.repair_syncs, r.repair_records_shipped);
  std::printf("hedged batches: %" PRId64 " sent, %" PRId64
              " absorbed by server-side dedup\n",
              r.batch_hedges_sent, r.batch_hedges_absorbed);
  std::printf("subscribers: %" PRId64 " notifications, %" PRId64 " resyncs\n",
              r.subscriber_notifications, r.subscriber_resyncs);
  std::printf("oracle: %" PRId64 " reads checked, %" PRId64 " violations\n",
              r.oracle.reads_checked, r.oracle.violations);
  for (const std::string& sample : r.violation_samples) {
    std::printf("  violation: %s\n", sample.c_str());
  }
  if (r.passed) {
    std::printf("PASSED (seed=%" PRIu64 " replays this scenario)\n", r.seed);
  } else {
    std::printf("FAILED (seed=%" PRIu64 "):\n", r.seed);
    for (const std::string& f : r.failures) {
      std::printf("  gate: %s\n", f.c_str());
    }
  }

  WriteJson(r, opts, backend_name);
  return gate && !r.passed ? 1 : 0;
}
