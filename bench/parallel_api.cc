// Throughput benchmark for the multi-threaded preMap/map executor
// (ParallelInvoker) against a latency-padded data service: the shape a
// networked deployment presents. Sweeps the worker-pool size over a
// zipf-skewed key popularity (the paper's skewed workloads) and reports
//   * ops/sec per thread count and the speedup over one worker,
//   * the live cache hit-rate, compared with the deterministic
//     single-threaded AsyncInvoker on the same request sequence.
// Emits machine-readable BENCH_parallel_api.json so the perf trajectory
// is tracked across PRs.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "joinopt/common/random.h"
#include "joinopt/engine/async_api.h"
#include "joinopt/engine/latency_service.h"
#include "joinopt/engine/parallel_invoker.h"
#include "joinopt/engine/plan_exec.h"

namespace joinopt {
namespace bench {
namespace {

struct WorkloadConfig {
  uint64_t num_keys = 2048;
  double zipf_z = 0.99;
  size_t payload_bytes = 4096;
  int64_t ops = 8000;
  int window = 256;  // submit window between fetch drains
};

/// A cheap deterministic UDF: a few dozen mixing rounds over the payload
/// prefix (microseconds of CPU, so service latency dominates — the regime
/// the parallel executor targets).
UserFn MixUdf() {
  return [](Key key, const std::string& params, const std::string& value) {
    uint64_t acc = Mix64(key) ^ Fnv1a(params);
    size_t limit = value.size() < 256 ? value.size() : 256;
    for (size_t i = 0; i < limit; i += 8) {
      acc = Mix64(acc + static_cast<unsigned char>(value[i]));
    }
    return std::to_string(acc & 0xffff);
  };
}

std::vector<Key> MakeTrace(const WorkloadConfig& cfg, uint64_t seed) {
  Rng rng(seed);
  ZipfDistribution zipf(cfg.num_keys, cfg.zipf_z);
  std::vector<Key> trace;
  trace.reserve(static_cast<size_t>(cfg.ops));
  for (int64_t i = 0; i < cfg.ops; ++i) {
    trace.push_back(static_cast<Key>(zipf.Sample(rng)));
  }
  return trace;
}

struct RunResult {
  int threads = 0;
  double seconds = 0;
  double ops_per_sec = 0;
  double hit_rate = 0;
  int64_t delegated = 0;
  int64_t delegation_batches = 0;
  int64_t coalesced_fetches = 0;
  LatencyRecorder fetch_latency;  ///< per-FetchComp wall time (drain side)
};

ParallelInvokerOptions InvokerOptions(int threads) {
  ParallelInvokerOptions opt;
  opt.num_threads = threads;
  opt.bandwidth_bytes_per_sec = 125e6;
  opt.queue_capacity = 1024;
  return opt;
}

RunResult RunParallel(ParallelStore* store, const WorkloadConfig& cfg,
                      const std::vector<Key>& trace, int threads) {
  LocalDataService raw(store);
  ServiceLatencyModel latency;  // defaults: 400 us RTT, 1 Gbps, 20 us/UDF
  LatencyPaddedService service(&raw, latency);
  ParallelInvoker invoker(&service, MixUdf(), InvokerOptions(threads));

  RunResult out;
  double t0 = PlanNowSeconds();
  size_t i = 0;
  const size_t n = trace.size();
  while (i < n) {
    size_t end = std::min(i + static_cast<size_t>(cfg.window), n);
    for (size_t j = i; j < end; ++j) {
      invoker.SubmitComp(trace[j], "p");
    }
    for (size_t j = i; j < end; ++j) {
      double f0 = PlanNowSeconds();
      auto r = invoker.FetchComp(trace[j], "p");
      if (!r.ok()) {
        std::fprintf(stderr, "fetch failed: %s\n",
                     r.status().ToString().c_str());
        std::exit(1);
      }
      out.fetch_latency.Observe(PlanNowSeconds() - f0);
    }
    i = end;
  }
  invoker.Barrier();
  double elapsed = PlanNowSeconds() - t0;

  ParallelInvokerStats s = invoker.stats();
  out.threads = threads;
  out.seconds = elapsed;
  out.ops_per_sec = static_cast<double>(n) / elapsed;
  out.hit_rate =
      static_cast<double>(s.served_from_cache) / static_cast<double>(n);
  out.delegated = s.delegated;
  out.delegation_batches = s.delegation_batches;
  out.coalesced_fetches = s.coalesced_fetches;
  return out;
}

/// Hit-rate of the deterministic single-threaded executor on the same
/// trace, against the same latency model: the measured compute-request
/// cost feeds the ski-rental threshold, so the baseline must see the same
/// service latencies the parallel runs do.
double SingleThreadedHitRate(ParallelStore* store,
                             const std::vector<Key>& trace) {
  LocalDataService raw(store);
  ServiceLatencyModel latency;
  LatencyPaddedService service(&raw, latency);
  AsyncInvoker::Options opt;
  opt.bandwidth_bytes_per_sec = 125e6;
  AsyncInvoker invoker(&service, MixUdf(), opt);
  for (Key key : trace) {
    auto r = invoker.FetchComp(key, "p");
    if (!r.ok()) std::exit(1);
  }
  return static_cast<double>(invoker.stats().served_from_cache) /
         static_cast<double>(trace.size());
}

}  // namespace

int Main() {
  double scale = BenchScale();
  WorkloadConfig cfg;
  cfg.ops = static_cast<int64_t>(cfg.ops * scale);
  if (cfg.ops < 512) cfg.ops = 512;

  PrintHeader("parallel_api: multi-threaded preMap/map executor",
              "throughput scales with workers by overlapping service "
              "latency; hit-rate tracks the single-threaded executor");

  ParallelStore store(ParallelStoreConfig{}, {10, 11, 12, 13}, {0});
  {
    Rng rng(7);
    for (Key k = 0; k < cfg.num_keys; ++k) {
      StoredItem item;
      item.payload.assign(cfg.payload_bytes,
                          static_cast<char>('a' + (k % 26)));
      item.size_bytes = static_cast<double>(item.payload.size());
      store.Put(k, item);
    }
  }

  std::vector<Key> trace = MakeTrace(cfg, /*seed=*/42);
  double st_hit_rate = SingleThreadedHitRate(&store, trace);

  std::printf("%8s %12s %14s %10s %10s %10s %8s\n", "threads", "seconds",
              "ops/sec", "speedup", "hit_rate", "delegated", "batches");
  std::vector<RunResult> results;
  for (int threads : {1, 2, 4, 8}) {
    RunResult r = RunParallel(&store, cfg, trace, threads);
    double speedup =
        results.empty() ? 1.0 : r.ops_per_sec / results.front().ops_per_sec;
    std::printf("%8d %12.3f %14.0f %9.2fx %9.1f%% %10" PRId64 " %8" PRId64
                "\n",
                r.threads, r.seconds, r.ops_per_sec, speedup,
                100.0 * r.hit_rate, r.delegated, r.delegation_batches);
    char label[64];
    std::snprintf(label, sizeof(label), "  fetch latency @%d threads",
                  r.threads);
    r.fetch_latency.PrintLine(label);
    std::fflush(stdout);
    results.push_back(r);
  }

  double speedup_8v1 = results.back().ops_per_sec / results.front().ops_per_sec;
  std::printf("\nspeedup at 8 threads vs 1: %.2fx\n", speedup_8v1);
  std::printf("single-threaded executor hit-rate on this trace: %.1f%%\n",
              100.0 * st_hit_rate);

  FILE* json = std::fopen("BENCH_parallel_api.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_parallel_api.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"parallel_api\",\n");
  std::fprintf(json, "  \"scale\": %.3f,\n", scale);
  std::fprintf(json, "  \"num_keys\": %" PRIu64 ",\n", cfg.num_keys);
  std::fprintf(json, "  \"zipf_z\": %.3f,\n", cfg.zipf_z);
  std::fprintf(json, "  \"payload_bytes\": %zu,\n", cfg.payload_bytes);
  std::fprintf(json, "  \"ops\": %" PRId64 ",\n", cfg.ops);
  std::fprintf(json, "  \"single_thread_executor_hit_rate\": %.4f,\n",
               st_hit_rate);
  std::fprintf(json, "  \"speedup_8_vs_1\": %.3f,\n", speedup_8v1);
  std::fprintf(json, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(json,
                 "    {\"threads\": %d, \"seconds\": %.4f, \"ops_per_sec\": "
                 "%.1f, \"hit_rate\": %.4f, \"delegated\": %" PRId64
                 ", \"delegation_batches\": %" PRId64
                 ", \"coalesced_fetches\": %" PRId64 ", ",
                 r.threads, r.seconds, r.ops_per_sec, r.hit_rate, r.delegated,
                 r.delegation_batches, r.coalesced_fetches);
    r.fetch_latency.JsonFields(json, "fetch");
    std::fprintf(json, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_parallel_api.json\n");
  return 0;
}

}  // namespace bench
}  // namespace joinopt

int main() { return joinopt::bench::Main(); }
