// Figure 10 of the paper, as real code: entity annotation written against
// the preMap/map API (submitComp / fetchComp), running in-process over real
// string payloads — no simulator involved. The AsyncInvoker routes each
// spot through the live ski-rental optimizer: hot tokens' models end up
// cached and classified locally; rare tokens are delegated to the store.
//
//   $ ./build/examples/premap_api
#include <cstdio>
#include <string>
#include <vector>

#include "joinopt/engine/async_api.h"
#include "joinopt/common/random.h"

using namespace joinopt;

namespace {

struct Spot {
  Key token;
  std::string context;
};

struct Document {
  std::vector<Spot> spots;
};

// f(key, params) of Figure 10: classifyRecord(params, model).
std::string ClassifyRecord(Key token, const std::string& context,
                           const std::string& model) {
  // A toy classifier: pick the "entity" whose tag appears in the model
  // blob; fall back to the token id.
  size_t at = model.find(context.substr(0, 2));
  return "entity<" + std::to_string(token) + ":" +
         (at == std::string::npos ? "unknown" : std::to_string(at)) + ">";
}

}  // namespace

int main() {
  // The model store: 2000 token models with real payloads.
  ParallelStore store(ParallelStoreConfig{}, /*data nodes=*/{10, 11, 12},
                      /*compute nodes=*/{0});
  Rng rng(7);
  for (Key token = 0; token < 2000; ++token) {
    StoredItem item;
    item.payload.resize(256 + rng.NextBounded(2048));
    for (auto& c : item.payload) {
      c = static_cast<char>('a' + rng.NextBounded(26));
    }
    item.size_bytes = static_cast<double>(item.payload.size());
    store.Put(token, item);
  }
  LocalDataService service(&store);
  AsyncInvoker invoker(&service, ClassifyRecord);

  // A document stream with Zipf-distributed token mentions.
  ZipfDistribution zipf(2000, 1.2);
  std::vector<Document> documents(500);
  for (auto& doc : documents) {
    int spots = 1 + static_cast<int>(rng.NextBounded(8));
    for (int s = 0; s < spots; ++s) {
      doc.spots.push_back(Spot{zipf.Sample(rng), "ctx-of-the-mention"});
    }
  }

  // preMap(docId, document): submit prefetches, then queue the document.
  // map(docId, document): fetch the computed annotations.
  int64_t annotated = 0;
  for (const Document& doc : documents) {
    for (const Spot& spot : doc.spots) {            // preMap
      invoker.SubmitComp(spot.token, spot.context);
    }
    for (const Spot& spot : doc.spots) {            // map
      auto annotation = invoker.FetchComp(spot.token, spot.context);
      if (annotation.ok()) ++annotated;
    }
  }

  const AsyncInvokerStats& s = invoker.stats();
  std::printf("annotated %lld spots across %zu documents\n",
              static_cast<long long>(annotated), documents.size());
  std::printf("  served from local cache : %lld\n",
              static_cast<long long>(s.served_from_cache));
  std::printf("  fetched then computed   : %lld (models bought by "
              "ski-rental)\n",
              static_cast<long long>(s.fetched_then_computed));
  std::printf("  delegated to the store  : %lld (rare tokens)\n",
              static_cast<long long>(s.delegated));
  std::printf("  store-side executions   : %lld\n",
              static_cast<long long>(service.executes()));
  return 0;
}
