// Quickstart: join a skewed input stream with an indexed stored relation on
// a small simulated cluster, and watch the per-key ski-rental routing beat
// the static alternatives.
//
//   $ ./build/examples/quickstart
//
// The scenario: 4 compute nodes join a 40k-tuple input against 10k stored
// values (16 KB each, 5 ms of UDF per match). Keys follow a Zipf(1.2)
// distribution, so a handful of keys dominate — the regime where neither
// pure map-side (fetch everything) nor pure reduce-side (ship everything)
// works well.
#include <cstdio>

#include "joinopt/joinopt.h"

using namespace joinopt;

int main() {
  // 1. A cluster: 4 compute nodes + 4 data nodes, 4 cores each.
  ClusterConfig cluster_config;
  cluster_config.num_compute_nodes = 4;
  cluster_config.num_data_nodes = 4;
  cluster_config.machine.cores = 4;

  // 2. A stored relation, indexed by key, partitioned over the data nodes.
  NodeLayout layout = NodeLayout::Of(4, 4);
  ParallelStore store(ParallelStoreConfig{}, layout.data_nodes,
                      layout.compute_nodes);
  for (Key k = 0; k < 10000; ++k) {
    StoredItem item;
    item.size_bytes = KiB(16);
    item.udf_cost = Milliseconds(5);
    store.Put(k, item);
  }
  std::printf("store: %zu items, %s total\n", store.total_items(),
              FormatBytes(store.total_bytes()).c_str());

  // 3. A skewed input stream, split across the compute nodes.
  Rng rng(2024);
  ZipfDistribution zipf(10000, 1.2);
  auto make_input = [&](int n) {
    std::vector<InputTuple> input;
    for (int i = 0; i < n; ++i) {
      InputTuple t;
      t.keys = {zipf.Sample(rng)};
      t.param_bytes = 200;
      input.push_back(t);
    }
    return input;
  };

  // 4. Run the join under each strategy on a fresh simulator.
  std::printf("\n%-10s %-12s %-12s %-10s %-10s\n", "strategy", "time",
              "throughput", "cache-hit", "at-data");
  for (Strategy s : {Strategy::kFC, Strategy::kFD, Strategy::kFO}) {
    Simulation sim;
    Cluster cluster(cluster_config);
    EngineConfig engine;
    JoinJob job(&sim, &cluster, {&store}, s, engine);
    Rng input_rng(2024);  // same input for every strategy
    rng = input_rng;
    for (int i = 0; i < 4; ++i) job.SetInput(i, make_input(10000));
    JobResult r = job.Run();
    std::printf("%-10s %-12s %-12.0f %-10lld %-10lld\n", StrategyToString(s),
                FormatDuration(r.makespan).c_str(), r.throughput,
                static_cast<long long>(r.cache_memory_hits +
                                       r.cache_disk_hits),
                static_cast<long long>(r.computed_at_data));
  }

  std::printf(
      "\nFO fetches and caches the heavy hitters at the compute nodes,\n"
      "ships the long tail to the data nodes, and load-balances the rest —\n"
      "the per-key runtime decision of the paper.\n");
  return 0;
}
