// Multiple joins (Section 6): run TPC-DS Q27 — store_sales joined left-deep
// with customer_demographics, date_dim, store and item — as a pipeline of
// <preMap, map> stages, and compare against a SparkSQL-style shuffle plan.
//
//   $ ./build/examples/multi_join_tpcds
//
// The framework never shuffles the fact table: each fact row walks the
// dimension stores via indexed compute/data requests, with per-dimension
// ski-rental caching of the hot dimension rows.
#include <cstdio>

#include "joinopt/joinopt.h"

using namespace joinopt;

int main() {
  TpcdsConfig config;
  config.scale = 0.05;
  config.fact_rows_per_node = 120000;

  FrameworkRunConfig run;
  run.cluster.num_compute_nodes = 5;
  run.cluster.num_data_nodes = 5;
  run.cluster.machine.cores = 8;
  run.engine.batch_max_wait = 1e-3;   // batch analytics: latency-insensitive
  run.engine.max_outstanding = 512;
  NodeLayout layout = NodeLayout::Of(5, 5);

  TpcdsQuery query = TpcdsQuery::kQ27;
  TpcdsQuerySpec spec = GetTpcdsQuerySpec(query, config.scale);
  std::printf("%s: store_sales JOIN", spec.name.c_str());
  for (const auto& stage : spec.stages) {
    std::printf(" %s(%lld rows, sel %.2f)", stage.dim_name.c_str(),
                static_cast<long long>(stage.dim_rows), stage.selectivity);
  }
  int64_t facts = static_cast<int64_t>(config.fact_rows_per_node) *
                  run.cluster.num_compute_nodes;
  std::printf("\nfact rows: %lld\n\n", static_cast<long long>(facts));

  JobResult spark = RunSparkBaselineJob(spec, facts, run.cluster);
  std::printf("SparkSQL shuffle plan : %-10s (%s shuffled)\n",
              FormatDuration(spark.makespan).c_str(),
              FormatBytes(spark.network_bytes).c_str());

  GeneratedWorkload workload = MakeTpcdsWorkload(query, config, layout);
  JobResult ours = RunFrameworkJob(workload, Strategy::kFO, run);
  std::printf("joinopt pipelined FO  : %-10s (%s on the wire, %lld dim rows "
              "cached)\n",
              FormatDuration(ours.makespan).c_str(),
              FormatBytes(ours.network_bytes).c_str(),
              static_cast<long long>(ours.data_requests));
  std::printf("\nspeedup: %.2fx\n",
              ours.makespan > 0 ? spark.makespan / ours.makespan : 0.0);
  return 0;
}
