// Streaming entity annotation on a Muppet-style engine (Section 9.1.2):
// annotate a tweet stream whose trending topics *change over time* — the
// setting where precomputed-statistics approaches (CSAW, Flow-Join) cannot
// apply and runtime adaptivity pays.
//
//   $ ./build/examples/streaming_tweets
//
// Also demonstrates mid-run updates to the data store (Section 4.2.3): a
// retrained model version invalidates the compute-node caches.
#include <cstdio>

#include "joinopt/joinopt.h"

using namespace joinopt;

int main() {
  TweetStreamConfig config;
  config.tweets = 30000;
  config.num_tokens = 8000;
  config.popularity_shifts = 6;  // trends change 6 times over the stream
  AnnotationSpots stream = GenerateTweetStream(config);
  std::printf("stream: %lld tweets, %lld annotatable spots, trends shift "
              "%d times\n",
              static_cast<long long>(stream.documents),
              static_cast<long long>(stream.num_spots()),
              config.popularity_shifts);

  FrameworkRunConfig run;
  run.cluster.num_compute_nodes = 5;
  run.cluster.num_data_nodes = 5;
  run.cluster.machine.cores = 8;
  NodeLayout layout = NodeLayout::Of(5, 5);
  GeneratedWorkload workload = ToFrameworkWorkload(stream, layout);

  ReportTable table({"strategy", "tweets/s", "cache hits"});
  for (Strategy s : {Strategy::kNO, Strategy::kFD, Strategy::kFO}) {
    MuppetRunResult r = RunMuppetStream(workload, s, run, stream.documents);
    table.AddRow({StrategyToString(s),
                  FormatDouble(r.documents_per_second, 0),
                  std::to_string(r.job.cache_memory_hits +
                                 r.job.cache_disk_hits)});
  }
  table.Print("Tweet annotation throughput (higher = better)");

  // --- Store updates invalidate caches -------------------------------
  std::printf("\nRe-running FO with a mid-stream model retrain (update to "
              "the hottest token)...\n");
  Simulation sim;
  Cluster cluster(run.cluster);
  EngineConfig engine;
  engine.computed_value_bytes = workload.computed_value_bytes;
  JoinJob job(&sim, &cluster, workload.store_ptrs(), Strategy::kFO, engine);
  for (size_t i = 0; i < workload.inputs.size(); ++i) {
    job.SetInput(static_cast<int>(i), workload.inputs[i]);
  }
  // Find the overall hottest token and retrain (update) it mid-run.
  Key hottest = 0;
  for (size_t t = 0; t < stream.token_count.size(); ++t) {
    if (stream.token_count[t] > stream.token_count[hottest]) {
      hottest = static_cast<Key>(t);
    }
  }
  sim.Schedule(0.05, [&job, hottest] {
    Status st = job.ApplyUpdate(0, hottest);
    std::printf("  t=0.05s: model for token %llu retrained (%s)\n",
                static_cast<unsigned long long>(hottest),
                st.ToString().c_str());
  });
  JobResult r = job.Run();
  int64_t invalidations = 0, resets = 0;
  for (int i = 0; i < run.cluster.num_compute_nodes; ++i) {
    const DecisionEngine* e = job.compute_runtime(i).engine(0);
    invalidations += e->stats().update_invalidations;
    resets += e->stats().update_resets;
  }
  std::printf("  run finished in %s; across compute nodes: %lld cache "
              "invalidations, %lld counter resets\n",
              FormatDuration(r.makespan).c_str(),
              static_cast<long long>(invalidations),
              static_cast<long long>(resets));
  return 0;
}
