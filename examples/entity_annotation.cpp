// Entity annotation — the paper's running example (Section 2.1). Documents
// contain token "spots"; each spot joins with a per-token ML model stored in
// the parallel store and a classification UDF runs on the pair. Token
// frequency AND per-model cost are both heavy-tailed, so reduce-side joins
// straggle and map-side joins drown in model transfers.
//
//   $ ./build/examples/entity_annotation
//
// Compares plain Hadoop MapReduce, the cost-aware CSAW partitioner [12],
// and the framework's FO strategy on the same synthetic corpus.
#include <cstdio>

#include "joinopt/joinopt.h"

using namespace joinopt;

int main() {
  AnnotationConfig config;
  config.num_tokens = 8000;
  config.documents = 3000;
  config.spots_per_doc_mean = 10.0;
  AnnotationSpots corpus = GenerateAnnotationSpots(config);
  std::printf("corpus: %lld documents, %lld spots\n",
              static_cast<long long>(corpus.documents),
              static_cast<long long>(corpus.num_spots()));
  std::printf("models: %s total, %.1f CPU-hours of classification if run "
              "serially\n",
              FormatBytes(corpus.total_model_bytes()).c_str(),
              corpus.total_classify_cost() / 3600.0);

  FrameworkRunConfig run;
  run.cluster.num_compute_nodes = 5;
  run.cluster.num_data_nodes = 5;
  run.cluster.machine.cores = 8;

  ReportTable table({"technique", "time", "max/mean CPU skew"});

  // Reduce-side baselines run on all 10 machines.
  for (MrBaselineKind kind : {MrBaselineKind::kHadoop, MrBaselineKind::kCsaw}) {
    auto result = RunAnnotationBaselineJob(corpus, kind, run.cluster);
    table.AddRow({MrBaselineKindToString(kind),
                  FormatDuration(result.job.makespan),
                  FormatDouble(result.job.compute_cpu_skew, 2)});
  }

  // The framework splits the same machines 5 compute + 5 data.
  NodeLayout layout = NodeLayout::Of(run.cluster.num_compute_nodes,
                                     run.cluster.num_data_nodes);
  GeneratedWorkload workload = ToFrameworkWorkload(corpus, layout);
  for (Strategy s : {Strategy::kFD, Strategy::kFO}) {
    JobResult r = RunFrameworkJob(workload, s, run);
    table.AddRow({StrategyToString(s), FormatDuration(r.makespan),
                  FormatDouble(std::max(r.compute_cpu_skew, r.data_cpu_skew),
                               2)});
  }
  table.Print("Entity annotation (lower time, lower skew = better)");

  std::printf(
      "\nHadoop hashes every token to one reducer: the hot tokens' models\n"
      "are classified by a single straggler. CSAW replicates the costly\n"
      "models using precomputed statistics. FO needs no statistics: the\n"
      "ski-rental notices the hot tokens at runtime and caches exactly\n"
      "those models at the compute nodes.\n");
  return 0;
}
